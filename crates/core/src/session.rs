//! The first-class experiment API: [`Session`] and [`Sweep`].
//!
//! This module is the §VI evaluation flow as a library. A [`Session`] binds
//! one engine design point to a simulator configuration, kernel options and
//! a shared memoizing [`TraceCache`]; it runs single layers, ad-hoc shapes,
//! explicit [`KernelSpec`]s, prebuilt traces, or whole layer suites, and
//! returns structured [`RunReport`]s. A [`Sweep`] runs an
//! engine × workload × sparsity grid — the shape of Fig. 13 — across a
//! scoped worker pool, building each distinct trace once per sweep instead
//! of once per engine.
//!
//! # Example
//!
//! ```
//! use vegeta::prelude::*;
//!
//! // One cell: BERT-L2 (scaled down 8x for the doctest) at 2:4 on VEGETA.
//! let layer = table4()[7];
//! let session = Session::new(EngineConfig::vegeta_s(16).unwrap());
//! let report = session.run_shape(layer.name, layer.scaled_shape(8), NmRatio::S2_4);
//! assert!(report.cycles > 0 && report.kernel.contains("2of4"));
//!
//! // A grid: two engines x one layer x two sparsities, in parallel.
//! let sweep = Sweep::new()
//!     .with_engines([EngineConfig::rasa_dm(), EngineConfig::vegeta_s(16).unwrap()])
//!     .with_layer(layer)
//!     .with_sparsities([NmRatio::D4_4, NmRatio::S2_4])
//!     .with_scale(8);
//! let grid = sweep.run();
//! assert_eq!(grid.cells.len(), 4);
//! assert!(grid.geomean_speedup(
//!     "RASA-DM (VEGETA-D-1-2)", "VEGETA-S-16-2", "2:4").unwrap() > 1.0);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use vegeta_engine::EngineConfig;
use vegeta_isa::trace::Trace;
use vegeta_kernels::{EngineKernelExt, Kernel, KernelOptions, KernelSpec, SparseMode, TraceCache};
use vegeta_sim::{CoreSim, ExecMode, MultiCoreConfig, MultiCoreSim, SchedulerPolicy, SimConfig};
use vegeta_sparse::{prune, transform, FormatSpec, NmRatio};
use vegeta_workloads::Layer;

use crate::kernels::GemmShape;
use crate::report::{NetworkReport, RunReport, SweepReport};

/// Sparsity degree used to synthesize the unstructured weights behind
/// row-wise/CSR storage-format cells (§VI-E evaluates "random and
/// unstructured sparsity of varying degrees"; 0.8 sits in its sweep range).
/// Override per session/sweep with `with_unstructured_degree`.
pub const DEFAULT_UNSTRUCTURED_DEGREE: f64 = 0.8;

/// The engine line-up of Fig. 13, in plot order: three dense baselines, the
/// STC-like engine, the five VEGETA-S designs, and VEGETA-S-16-2 with
/// output forwarding.
pub fn figure13_engines() -> Vec<EngineConfig> {
    let mut engines = vec![
        EngineConfig::rasa_sm(),
        EngineConfig::rasa_dm(),
        EngineConfig::tmul_like(),
        EngineConfig::stc_like(),
    ];
    for alpha in [1usize, 2, 4, 8, 16] {
        engines.push(EngineConfig::vegeta_s(alpha).expect("valid alpha"));
    }
    engines.push(
        EngineConfig::vegeta_s(16)
            .expect("valid alpha")
            .with_output_forwarding(true),
    );
    engines
}

/// The three structured weight sparsities of the evaluation, sparsest last.
pub fn figure13_sparsities() -> Vec<NmRatio> {
    vec![NmRatio::D4_4, NmRatio::S2_4, NmRatio::S1_4]
}

/// The layer scale factor requested via the `VEGETA_QUICK` environment
/// variable: 4 when quick mode is on (any non-empty value other than
/// `"0"`), 1 otherwise. The single source of truth for quick-mode
/// detection across benches, binaries and examples; pass the result to
/// [`Sweep::with_scale`] or [`Session::run_layer_scaled`], or use
/// [`Fidelity::from_env`] for the fidelity-axis form.
pub fn quick_factor() -> usize {
    match std::env::var("VEGETA_QUICK") {
        Ok(v) if v != "0" && !v.is_empty() => 4,
        _ => 1,
    }
}

/// The shape fidelity a layer runs at: the paper's full Table IV
/// dimensions, or a proxy scaled down by a factor.
///
/// Fidelity is a first-class, sweepable axis ([`Sweep::with_fidelities`]):
/// quick cells keep CI fast while full cells replay the real network-scale
/// layers through the streaming pipeline in bounded memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fidelity {
    /// Every layer dimension divided by the factor (flooring at one output
    /// tile), as `VEGETA_QUICK` runs do; `Quick(1)` is equivalent to
    /// [`Fidelity::Full`].
    Quick(usize),
    /// Unscaled Table IV dimensions.
    Full,
}

impl Fidelity {
    /// The fidelity `VEGETA_QUICK` requests: `Quick(4)` when quick mode is
    /// on, [`Fidelity::Full`] otherwise.
    pub fn from_env() -> Self {
        Fidelity::from_factor(quick_factor())
    }

    /// `Full` for factors ≤ 1, `Quick(factor)` otherwise.
    pub fn from_factor(factor: usize) -> Self {
        if factor <= 1 {
            Fidelity::Full
        } else {
            Fidelity::Quick(factor)
        }
    }

    /// The layer scale divisor (1 for full fidelity).
    pub fn factor(self) -> usize {
        match self {
            Fidelity::Quick(f) => f.max(1),
            Fidelity::Full => 1,
        }
    }

    /// The shape `layer` executes at this fidelity.
    pub fn shape_of(self, layer: &Layer) -> GemmShape {
        layer.scaled_shape(self.factor())
    }
}

impl std::fmt::Display for Fidelity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fidelity::Quick(n) if *n > 1 => write!(f, "quick/{n}"),
            _ => write!(f, "full"),
        }
    }
}

/// Callback observing a streamed replay's progress:
/// `(workload label, instructions simulated, exact total)`. Invoked every
/// [`vegeta_sim::PROGRESS_STRIDE`] instructions and at completion.
pub type ProgressFn = Arc<dyn Fn(&str, u64, u64) + Send + Sync>;

/// The execution-side numbers of one simulated cell, whichever simulator
/// produced them — the single place a cell's `RunReport` is assembled
/// from (see [`CellOutcome::report`]).
struct CellOutcome {
    cycles: u64,
    instructions: u64,
    tile_compute: u64,
    engine_busy_cycles: u64,
    peak_resident_bytes: u64,
    cores: usize,
    scheduler: String,
    per_core_cycles: Vec<u64>,
    shared_l2: vegeta_sim::SharedL2Stats,
    scaling_efficiency: f64,
}

impl From<vegeta_sim::SimResult> for CellOutcome {
    fn from(res: vegeta_sim::SimResult) -> Self {
        CellOutcome {
            cycles: res.core_cycles,
            instructions: res.instructions,
            tile_compute: res.tile_compute,
            engine_busy_cycles: res.engine_busy_cycles,
            peak_resident_bytes: res.peak_resident_bytes,
            cores: 1,
            scheduler: "-".to_string(),
            per_core_cycles: Vec::new(),
            shared_l2: Default::default(),
            scaling_efficiency: if res.core_cycles == 0 { 0.0 } else { 1.0 },
        }
    }
}

impl From<vegeta_sim::MultiCoreResult> for CellOutcome {
    fn from(res: vegeta_sim::MultiCoreResult) -> Self {
        CellOutcome {
            cycles: res.core_cycles,
            instructions: res.instructions(),
            tile_compute: res.tile_compute(),
            engine_busy_cycles: res.engine_busy_cycles(),
            peak_resident_bytes: res.peak_resident_bytes(),
            scaling_efficiency: res.scaling_efficiency(),
            per_core_cycles: res.per_core_cycles(),
            cores: res.cores,
            scheduler: SchedulerPolicy::default().label().to_string(),
            shared_l2: res.shared_l2,
        }
    }
}

impl CellOutcome {
    /// Labels the outcome into the full cell report (every session run
    /// streams, so `insts_streamed == instructions`).
    #[allow(clippy::too_many_arguments)] // internal plumbing behind every run_* entry point
    fn report(
        self,
        engine: &EngineConfig,
        sim: &SimConfig,
        workload: &str,
        sparsity: String,
        fidelity: Fidelity,
        shape: GemmShape,
        spec: &KernelSpec,
    ) -> RunReport {
        RunReport {
            workload: workload.to_string(),
            engine: engine.name().to_string(),
            sparsity,
            fidelity: fidelity.to_string(),
            kernel: spec.name(),
            format: spec.format().to_string(),
            a_values_bytes: spec.a_values_bytes(shape),
            a_metadata_bits: spec.a_metadata_bits(shape),
            shape,
            cycles: self.cycles,
            instructions: self.instructions,
            tile_compute: self.tile_compute,
            engine_busy_cycles: self.engine_busy_cycles,
            insts_streamed: self.instructions,
            peak_resident_bytes: self.peak_resident_bytes,
            macs: shape.macs(),
            core_ghz: sim.core_ghz,
            cores: self.cores,
            scheduler: self.scheduler,
            per_core_cycles: self.per_core_cycles,
            shared_l2: self.shared_l2,
            scaling_efficiency: self.scaling_efficiency,
        }
    }
}

/// The opt-out static-verification gate in front of every simulated cell.
///
/// Before a cell's stream replays, [`vegeta_lint`] proves it well-formed —
/// register dataflow, footprint bounds, shard coverage, and declared-length
/// accounting — and a diagnostic aborts the run with the full report:
/// simulating a malformed stream would only launder the defect into
/// silently wrong cycle counts. Verification is memoized per distinct
/// `(shape, spec, cores, policy)` cell behind a shared [`Arc`], so a sweep
/// pays each stream once however many engines replay it, and clones (one
/// per [`Session`]) share the memo the way they share the trace cache.
/// Disable with [`Session::with_preflight`] / [`Sweep::with_preflight`].
/// One memoized preflight cell: `(shape, spec, cores, policy)`.
type PreflightKey = (GemmShape, KernelSpec, usize, SchedulerPolicy);

/// A memoized static-verification gate over `(shape, spec, cores, policy)`
/// cells (see the module-level discussion above): each distinct cell is
/// lint-verified once, and clones share the memo through an [`Arc`].
///
/// [`Session`]/[`Sweep`] use it panicking (a malformed stream inside a
/// trusted experiment grid is a bug, not an input); request-facing layers
/// such as `vegeta-serve` use the non-panicking [`Preflight::verify`] to
/// turn the same diagnostics into structured request errors. Both paths
/// share one keying, so a spec verified at admission is never re-verified
/// by the session that simulates it.
#[derive(Clone, Debug, Default)]
pub struct Preflight {
    disabled: bool,
    verified: Arc<Mutex<HashMap<PreflightKey, Result<(), String>>>>,
}

impl Preflight {
    /// An enabled gate with an empty memo.
    pub fn new() -> Self {
        Preflight::default()
    }

    /// Enables or disables the gate (disabled gates verify nothing and
    /// always succeed); the memo is kept either way.
    pub fn with_enabled(mut self, enabled: bool) -> Self {
        self.disabled = !enabled;
        self
    }

    /// `true` when the gate actually verifies (the default).
    pub fn is_enabled(&self) -> bool {
        !self.disabled
    }

    /// Statically verifies one cell — `cores == 0` means the unsharded
    /// single-core path, `cores >= 1` the sharded decomposition the given
    /// scheduler policy would execute — memoizing the outcome (failures
    /// included: lint is deterministic, so a rejected cell stays rejected).
    ///
    /// # Errors
    ///
    /// The formatted `vegeta-lint` report when any diagnostic fires.
    pub fn verify(
        &self,
        shape: GemmShape,
        spec: &KernelSpec,
        cores: usize,
        policy: SchedulerPolicy,
    ) -> Result<(), String> {
        if self.disabled {
            return Ok(());
        }
        let key = (shape, spec.clone(), cores, policy);
        if let Some(outcome) = self
            .verified
            .lock()
            .expect("preflight memo poisoned")
            .get(&key)
        {
            return outcome.clone();
        }
        let report = match (cores, policy) {
            (0, _) => vegeta_lint::verify_spec(spec, shape),
            (n, SchedulerPolicy::Static) => vegeta_lint::verify_shard_streams(spec, shape, n),
            (n, SchedulerPolicy::Lpt) => vegeta_lint::verify_shard_set(spec, shape, n),
        };
        let outcome = if report.is_clean() {
            Ok(())
        } else {
            Err(format!(
                "preflight rejected {} at {}x{}x{} ({cores} cores, {policy:?}):\n{report}",
                spec.name(),
                shape.m,
                shape.n,
                shape.k,
            ))
        };
        self.verified
            .lock()
            .expect("preflight memo poisoned")
            .insert(key, outcome.clone());
        outcome
    }

    /// Verifies one cell, panicking with the lint report on any diagnostic
    /// (the [`Session`]/[`Sweep`] contract: simulating a malformed stream
    /// would launder the defect into silently wrong cycle counts).
    fn check(&self, shape: GemmShape, spec: &KernelSpec, cores: usize, policy: SchedulerPolicy) {
        if let Err(report) = self.verify(shape, spec, cores, policy) {
            panic!("{report}");
        }
    }
}

/// Simulates one `(engine, shape, spec)` cell through the streaming
/// pipeline — the trace is generated lazily and never materialized — and
/// wraps it in a report including the executed kernel's storage-format
/// accounting.
#[allow(clippy::too_many_arguments)] // internal plumbing behind every run_* entry point
fn run_cell(
    preflight: &Preflight,
    engine: &EngineConfig,
    sim: &SimConfig,
    cache: &TraceCache,
    workload: &str,
    sparsity: String,
    fidelity: Fidelity,
    shape: GemmShape,
    spec: &KernelSpec,
    progress: Option<&ProgressFn>,
) -> RunReport {
    preflight.check(shape, spec, 0, SchedulerPolicy::Static);
    let mut stream = cache.stream(shape, spec);
    let mut core = CoreSim::new(sim.clone(), engine.clone());
    let res = match progress {
        Some(p) => {
            let mut cb = |done: u64, total: u64| p(workload, done, total);
            core.run_stream_with(&mut stream, Some(&mut cb))
        }
        None => core.run_stream(&mut stream),
    };
    CellOutcome::from(res).report(engine, sim, workload, sparsity, fidelity, shape, spec)
}

/// Simulates one `(engine, shape, spec)` cell sharded across `cores` cores
/// of a [`MultiCoreSim`]. Under [`SchedulerPolicy::Static`] the kernel is
/// split 1D by M-tile rows ([`KernelSpec::shard_streams`]), one stream per
/// core; under [`SchedulerPolicy::Lpt`] it is decomposed into a 2D/K-split
/// shard set ([`KernelSpec::shard_set`]) and LPT-packed onto the cores,
/// with any K-split reduction replayed after the barrier. Each shard
/// streams through its core (private L1 + engine) over one coherence-free
/// shared L2. The report's `cycles` is the makespan including the
/// end-of-shard barrier (and reduction); per-core cycles, shared-L2 stats
/// and the run's parallel efficiency ride along.
#[allow(clippy::too_many_arguments)] // internal plumbing behind every run_* entry point
fn run_cell_cores(
    preflight: &Preflight,
    engine: &EngineConfig,
    sim: &SimConfig,
    cache: &TraceCache,
    workload: &str,
    sparsity: String,
    fidelity: Fidelity,
    shape: GemmShape,
    spec: &KernelSpec,
    cores: usize,
    policy: SchedulerPolicy,
    exec: ExecMode,
    progress: Option<&ProgressFn>,
) -> RunReport {
    preflight.check(shape, spec, cores, policy);
    // Memoize the unsharded generator summary so sweeps account trace
    // construction identically whichever axis ran first.
    cache.summary(shape, spec);
    let (shards, reduction) = match policy {
        SchedulerPolicy::Static => (spec.shard_streams(shape, cores), None),
        SchedulerPolicy::Lpt => {
            let set = spec.shard_set(shape, cores);
            (set.shards, set.reduction)
        }
    };
    let mut sim_mc = MultiCoreSim::new(
        MultiCoreConfig::with_core(sim.clone(), cores).with_exec(exec),
        engine.clone(),
    );
    let res = match progress {
        Some(p) => {
            let mut cb = |done: u64, total: u64| p(workload, done, total);
            sim_mc.run_sharded_with(shards, reduction, policy, Some(&mut cb))
        }
        None => sim_mc.run_sharded(shards, reduction, policy),
    };
    let mut outcome = CellOutcome::from(res);
    outcome.scheduler = policy.label().to_string();
    outcome.report(engine, sim, workload, sparsity, fidelity, shape, spec)
}

/// Synthesizes the sorted §V-E row covers a row-wise format cell executes:
/// per-row `N:4` covers of a seeded unstructured matrix at `degree`
/// (deterministic in the shape, so repeated cells agree).
fn row_wise_covers(shape: GemmShape, degree: f64) -> Vec<NmRatio> {
    let seed = (shape.m as u64)
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(shape.k as u64);
    let mut rng = SmallRng::seed_from_u64(seed);
    let a = prune::random_unstructured(shape.m, shape.k, degree, &mut rng);
    let mut covers = transform::row_covers(&a, 4).expect("M = 4 is always supported");
    covers.sort();
    covers
}

/// The kernel an engine executes for an `A` operand *stored* in `format`
/// (the storage-side twin of [`EngineKernelExt::kernel_spec`]):
///
/// * dense and `N:M` operands run the tiled kernel the engine supports for
///   that pattern (a dense engine executes any format densely);
/// * row-wise `N:4` operands run `TILE_SPMM_R` with covers from
///   [`row_wise_covers`] (pass a memoized slice via `covers` to share the
///   synthesis across cells) — but only on engines with flexible per-row
///   `N:M` support (the VEGETA-S designs); dense and fixed-pattern engines,
///   and any `m != 4` (which the register images cannot encode), must
///   decompress and execute densely;
/// * CSR operands cannot enter the tile engine without a §III-D cover
///   transform, so they execute on the vector baseline — which is exactly
///   the structured-vs-unstructured comparison a format sweep plots.
fn kernel_for_format(
    engine: &EngineConfig,
    shape: GemmShape,
    format: FormatSpec,
    opts: KernelOptions,
    degree: f64,
    covers: Option<&[NmRatio]>,
) -> KernelSpec {
    match format {
        FormatSpec::Dense => engine.kernel_spec(NmRatio::D4_4, opts),
        FormatSpec::Nm(ratio) => engine.kernel_spec(ratio, opts),
        FormatSpec::RowWise { m } => {
            // TILE_SPMM_R needs per-row pattern flexibility (the engine must
            // execute 1:4 natively, not via a denser fallback) and the
            // M = 4 encoding the mreg row-pattern sidecar supports; every
            // other case decompresses and runs densely.
            if m != 4 || engine.execution_mode(NmRatio::S1_4) != SparseMode::Nm1of4 {
                return engine.kernel_spec(NmRatio::D4_4, opts);
            }
            let row_ratios = match covers {
                Some(c) => c.to_vec(),
                None => row_wise_covers(shape, degree),
            };
            KernelSpec::RowWise { row_ratios }
        }
        FormatSpec::Csr => KernelSpec::Vector,
    }
}

/// One engine bound to a simulator configuration, kernel options and a
/// trace cache: the single-engine experiment driver.
///
/// Sessions are cheap to clone-per-engine while sharing one cache: pass the
/// same [`Arc<TraceCache>`] via [`Session::with_cache`] and identical
/// kernels are built once across all of them.
#[derive(Clone)]
pub struct Session {
    engine: EngineConfig,
    sim: SimConfig,
    opts: KernelOptions,
    unstructured_degree: f64,
    scheduler: SchedulerPolicy,
    cache: Arc<TraceCache>,
    progress: Option<ProgressFn>,
    preflight: Preflight,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("engine", &self.engine)
            .field("sim", &self.sim)
            .field("opts", &self.opts)
            .field("unstructured_degree", &self.unstructured_degree)
            .field("scheduler", &self.scheduler)
            .field("cache", &self.cache)
            .field("progress", &self.progress.as_ref().map(|_| "Fn"))
            .field("preflight", &self.preflight)
            .finish()
    }
}

impl Session {
    /// A session for one engine with default §VI-B simulator parameters,
    /// default kernel options, and a private trace cache.
    pub fn new(engine: EngineConfig) -> Self {
        Session {
            engine,
            sim: SimConfig::default(),
            opts: KernelOptions::default(),
            unstructured_degree: DEFAULT_UNSTRUCTURED_DEGREE,
            scheduler: SchedulerPolicy::default(),
            cache: Arc::new(TraceCache::new()),
            progress: None,
            preflight: Preflight::default(),
        }
    }

    /// Replaces the scheduler policy multi-core runs use to assign shards
    /// to cores (the default is [`SchedulerPolicy::Lpt`], which also
    /// unlocks 2D/K-split shard plans; [`SchedulerPolicy::Static`] is the
    /// legacy one-M-row-shard-per-core path).
    pub fn with_scheduler(mut self, scheduler: SchedulerPolicy) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Installs a progress observer for streamed replays (useful for long
    /// full-fidelity runs): called with
    /// `(workload, instructions simulated, exact total)`.
    pub fn with_progress(mut self, progress: ProgressFn) -> Self {
        self.progress = Some(progress);
        self
    }

    /// Replaces the sparsity degree of the synthesized unstructured weights
    /// behind [`Session::run_format`] row-wise/CSR cells.
    pub fn with_unstructured_degree(mut self, degree: f64) -> Self {
        self.unstructured_degree = degree;
        self
    }

    /// Replaces the simulator configuration.
    pub fn with_sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Replaces the kernel options used for layer/shape runs.
    pub fn with_kernel_options(mut self, opts: KernelOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Shares a trace cache (for example across per-engine sessions).
    pub fn with_cache(mut self, cache: Arc<TraceCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Enables or disables the static-verification preflight (on by
    /// default): every distinct `(shape, kernel, sharding)` cell is proven
    /// well-formed by `vegeta-lint` before it simulates, and a diagnostic
    /// aborts the run with the lint report. Verification is memoized, so
    /// repeated cells (and clones sharing this session's memo) pay once.
    pub fn with_preflight(mut self, enabled: bool) -> Self {
        self.preflight.disabled = !enabled;
        self
    }

    /// The engine this session simulates.
    pub fn engine(&self) -> &EngineConfig {
        &self.engine
    }

    /// The session's trace cache.
    pub fn cache(&self) -> &Arc<TraceCache> {
        &self.cache
    }

    /// The execution mode this session's engine uses for the given weight
    /// pattern (delegates to [`EngineKernelExt::execution_mode`]).
    pub fn execution_mode(&self, weights: NmRatio) -> SparseMode {
        self.engine.execution_mode(weights)
    }

    /// Runs an ad-hoc GEMM shape at the given weight sparsity, picking the
    /// kernel the engine would execute (§VI-C). Ad-hoc shapes are their own
    /// ground truth, so the report's fidelity is `"full"`.
    pub fn run_shape(&self, workload: &str, shape: GemmShape, weights: NmRatio) -> RunReport {
        let spec = self.engine.kernel_spec(weights, self.opts);
        run_cell(
            &self.preflight,
            &self.engine,
            &self.sim,
            &self.cache,
            workload,
            weights.to_string(),
            Fidelity::Full,
            shape,
            &spec,
            self.progress.as_ref(),
        )
    }

    /// Runs one Table IV layer at the given fidelity: the streaming
    /// pipeline makes [`Fidelity::Full`] replays feasible in bounded
    /// memory even for the largest layers.
    pub fn run_layer_at(&self, layer: &Layer, weights: NmRatio, fidelity: Fidelity) -> RunReport {
        let spec = self.engine.kernel_spec(weights, self.opts);
        run_cell(
            &self.preflight,
            &self.engine,
            &self.sim,
            &self.cache,
            layer.name,
            weights.to_string(),
            fidelity,
            fidelity.shape_of(layer),
            &spec,
            self.progress.as_ref(),
        )
    }

    /// Runs one Table IV layer at full size ([`Fidelity::Full`]).
    pub fn run_layer(&self, layer: &Layer, weights: NmRatio) -> RunReport {
        self.run_layer_at(layer, weights, Fidelity::Full)
    }

    /// Runs one Table IV layer sharded across `cores` matrix-engine cores
    /// at full fidelity (see [`Session::run_layer_cores_at`]).
    pub fn run_layer_cores(&self, layer: &Layer, weights: NmRatio, cores: usize) -> RunReport {
        self.run_layer_cores_at(layer, weights, Fidelity::Full, cores)
    }

    /// Runs one Table IV layer sharded across `cores` cores of a
    /// [`vegeta_sim::MultiCoreSim`] at the given fidelity: the kernel is
    /// decomposed per the session's [`SchedulerPolicy`] (the default LPT
    /// path over-decomposes into a 2D/K-split shard set and load-balances
    /// it; the static path splits 1D by M-tile rows, one stream per core),
    /// private L1s share a coherence-free L2, and the report carries the
    /// makespan (barrier and any K-split reduction included), per-core
    /// cycles, shared-L2 stats and parallel efficiency. `cores == 1` runs
    /// the same harness with a single unsplit shard (cycle-identical to
    /// [`Session::run_layer_at`] — the barrier is free for one core).
    pub fn run_layer_cores_at(
        &self,
        layer: &Layer,
        weights: NmRatio,
        fidelity: Fidelity,
        cores: usize,
    ) -> RunReport {
        let spec = self.engine.kernel_spec(weights, self.opts);
        run_cell_cores(
            &self.preflight,
            &self.engine,
            &self.sim,
            &self.cache,
            layer.name,
            weights.to_string(),
            fidelity,
            fidelity.shape_of(layer),
            &spec,
            cores,
            self.scheduler,
            ExecMode::Auto,
            self.progress.as_ref(),
        )
    }

    /// Runs an ad-hoc GEMM shape sharded across `cores` cores (the
    /// ad-hoc-shape twin of [`Session::run_layer_cores_at`]).
    pub fn run_shape_cores(
        &self,
        workload: &str,
        shape: GemmShape,
        weights: NmRatio,
        cores: usize,
    ) -> RunReport {
        let spec = self.engine.kernel_spec(weights, self.opts);
        run_cell_cores(
            &self.preflight,
            &self.engine,
            &self.sim,
            &self.cache,
            workload,
            weights.to_string(),
            Fidelity::Full,
            shape,
            &spec,
            cores,
            self.scheduler,
            ExecMode::Auto,
            self.progress.as_ref(),
        )
    }

    /// Runs one layer scaled down by `factor` (see [`Layer::scaled_shape`]).
    pub fn run_layer_scaled(&self, layer: &Layer, weights: NmRatio, factor: usize) -> RunReport {
        self.run_layer_at(layer, weights, Fidelity::from_factor(factor))
    }

    /// Runs an ad-hoc GEMM shape with the `A` operand *stored* in the given
    /// format, picking the kernel the engine executes for that storage
    /// (structured formats run their tile kernels, CSR falls back to the
    /// vector engine — see the module docs). The report's sparsity label is
    /// the format label.
    pub fn run_format(&self, workload: &str, shape: GemmShape, format: FormatSpec) -> RunReport {
        let spec = kernel_for_format(
            &self.engine,
            shape,
            format,
            self.opts,
            self.unstructured_degree,
            None,
        );
        run_cell(
            &self.preflight,
            &self.engine,
            &self.sim,
            &self.cache,
            workload,
            format.to_string(),
            Fidelity::Full,
            shape,
            &spec,
            self.progress.as_ref(),
        )
    }

    /// Runs an explicit kernel spec on a shape (for ablations and
    /// non-tiled kernels). The sparsity label is derived from the spec's
    /// mode, `"-"` for kernels without one.
    pub fn run_spec(&self, workload: &str, shape: GemmShape, spec: &KernelSpec) -> RunReport {
        let sparsity = spec
            .mode()
            .map_or_else(|| "-".to_string(), |m| m.ratio().to_string());
        run_cell(
            &self.preflight,
            &self.engine,
            &self.sim,
            &self.cache,
            workload,
            sparsity,
            Fidelity::Full,
            shape,
            spec,
            self.progress.as_ref(),
        )
    }

    /// Runs a prebuilt materialized trace (bypassing kernel selection and
    /// the cache). Operand storage is unknown for a raw trace, so the
    /// format label is `"-"` and the operand accounting is zero;
    /// `insts_streamed` is 0 (nothing streamed — the trace was already
    /// resident) and the peak residency is the whole trace.
    pub fn run_trace(&self, workload: &str, shape: GemmShape, trace: &Trace) -> RunReport {
        let res = CoreSim::new(self.sim.clone(), self.engine.clone()).run(trace);
        RunReport {
            workload: workload.to_string(),
            engine: self.engine.name().to_string(),
            sparsity: "-".to_string(),
            fidelity: Fidelity::Full.to_string(),
            kernel: "prebuilt-trace".to_string(),
            format: "-".to_string(),
            a_values_bytes: 0,
            a_metadata_bits: 0,
            shape,
            cycles: res.core_cycles,
            instructions: res.instructions,
            tile_compute: res.tile_compute,
            engine_busy_cycles: res.engine_busy_cycles,
            insts_streamed: 0,
            peak_resident_bytes: res.peak_resident_bytes,
            macs: shape.macs(),
            core_ghz: self.sim.core_ghz,
            cores: 1,
            scheduler: "-".to_string(),
            per_core_cycles: Vec::new(),
            shared_l2: Default::default(),
            scaling_efficiency: if res.core_cycles == 0 { 0.0 } else { 1.0 },
        }
    }

    /// Runs a layer suite back to back, as a network inference would (each
    /// layer's GEMM executes in full before the next begins).
    pub fn run_network(&self, layers: &[Layer], weights: NmRatio) -> NetworkReport {
        self.run_network_scaled(layers, weights, 1)
    }

    /// Runs a layer suite with every layer scaled down by `factor` (see
    /// [`Layer::scaled_shape`]); 1 means full size.
    pub fn run_network_scaled(
        &self,
        layers: &[Layer],
        weights: NmRatio,
        factor: usize,
    ) -> NetworkReport {
        self.run_network_at(layers, weights, Fidelity::from_factor(factor))
    }

    /// Runs a layer suite at the given fidelity — the end-to-end network
    /// replay of §VI, streaming every layer's trace in bounded memory.
    pub fn run_network_at(
        &self,
        layers: &[Layer],
        weights: NmRatio,
        fidelity: Fidelity,
    ) -> NetworkReport {
        NetworkReport {
            engine: self.engine.name().to_string(),
            sparsity: weights.to_string(),
            layers: layers
                .iter()
                .map(|l| self.run_layer_at(l, weights, fidelity))
                .collect(),
        }
    }
}

/// One entry of a sweep's middle axis: either a weight-sparsity pattern
/// (the engine picks its storage) or an explicit storage format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GridAxis {
    Pattern(NmRatio),
    Format(FormatSpec),
}

/// A grid runner over engine × workload × {sparsity pattern | storage
/// format} × core-count × scheduler-policy combinations.
///
/// The middle axis mixes two kinds of entries: weight-sparsity patterns
/// ([`Sweep::with_sparsities`], the Fig. 13 axis — the engine chooses how
/// to store/execute them) and explicit storage formats
/// ([`Sweep::with_formats`], the Fig. 12-style axis — dense vs structured
/// vs row-wise vs CSR for the *same* engine). Patterns come first in the
/// report, then formats, each in insertion order.
///
/// Cells execute across a scoped `std::thread` worker pool (all distinct
/// traces memoized in one shared [`TraceCache`]), and the report's cell
/// order is deterministic — workload-major, then axis, then engine —
/// regardless of thread count.
#[derive(Debug, Clone)]
pub struct Sweep {
    engines: Vec<EngineConfig>,
    layers: Vec<Layer>,
    sparsities: Vec<NmRatio>,
    formats: Vec<FormatSpec>,
    fidelities: Vec<Fidelity>,
    cores: Vec<usize>,
    schedulers: Vec<SchedulerPolicy>,
    unstructured_degree: f64,
    scale: usize,
    sim: SimConfig,
    opts: KernelOptions,
    threads: usize,
    cache: Arc<TraceCache>,
    preflight: Preflight,
}

impl Default for Sweep {
    fn default() -> Self {
        Sweep {
            engines: Vec::new(),
            layers: Vec::new(),
            sparsities: Vec::new(),
            formats: Vec::new(),
            fidelities: Vec::new(),
            cores: Vec::new(),
            schedulers: Vec::new(),
            unstructured_degree: DEFAULT_UNSTRUCTURED_DEGREE,
            scale: 1,
            sim: SimConfig::default(),
            opts: KernelOptions::default(),
            threads: 0,
            cache: Arc::new(TraceCache::new()),
            preflight: Preflight::default(),
        }
    }
}

impl Sweep {
    /// An empty sweep with default simulator parameters and kernel options.
    pub fn new() -> Self {
        Sweep::default()
    }

    /// The full Fig. 13 grid: the ten-engine line-up × the twelve Table IV
    /// layers × {4:4, 2:4, 1:4}.
    pub fn figure13() -> Self {
        Sweep::new()
            .with_engines(figure13_engines())
            .with_layers(vegeta_workloads::table4())
            .with_sparsities(figure13_sparsities())
    }

    /// Adds one engine to the grid.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engines.push(engine);
        self
    }

    /// Adds engines to the grid.
    pub fn with_engines(mut self, engines: impl IntoIterator<Item = EngineConfig>) -> Self {
        self.engines.extend(engines);
        self
    }

    /// Adds one workload layer to the grid.
    pub fn with_layer(mut self, layer: Layer) -> Self {
        self.layers.push(layer);
        self
    }

    /// Adds workload layers to the grid.
    pub fn with_layers(mut self, layers: impl IntoIterator<Item = Layer>) -> Self {
        self.layers.extend(layers);
        self
    }

    /// Adds one weight sparsity to the grid.
    pub fn with_sparsity(mut self, ratio: NmRatio) -> Self {
        self.sparsities.push(ratio);
        self
    }

    /// Adds weight sparsities to the grid.
    pub fn with_sparsities(mut self, ratios: impl IntoIterator<Item = NmRatio>) -> Self {
        self.sparsities.extend(ratios);
        self
    }

    /// Adds one storage format to the grid (see [`Sweep::with_formats`]).
    pub fn with_format(mut self, format: FormatSpec) -> Self {
        self.formats.push(format);
        self
    }

    /// Adds storage formats to the grid: each cell runs the kernel the
    /// engine executes for an `A` operand stored in that format (dense and
    /// `N:M` on the tile kernels, row-wise on `TILE_SPMM_R` with synthesized
    /// §V-E covers, CSR on the vector baseline). This is the Fig. 12-style
    /// structured-vs-unstructured axis.
    pub fn with_formats(mut self, formats: impl IntoIterator<Item = FormatSpec>) -> Self {
        self.formats.extend(formats);
        self
    }

    /// Replaces the sparsity degree of the synthesized unstructured weights
    /// behind row-wise/CSR format cells.
    pub fn with_unstructured_degree(mut self, degree: f64) -> Self {
        self.unstructured_degree = degree;
        self
    }

    /// Adds one fidelity to the grid (see [`Sweep::with_fidelities`]).
    pub fn with_fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelities.push(fidelity);
        self
    }

    /// Adds fidelities to the grid, making shape fidelity a sweepable axis:
    /// each `(layer, fidelity)` pair runs every sparsity/format × engine
    /// cell, so a single sweep can pin quick-mode proxies against
    /// full-scale replays. When no fidelity is given, the grid runs at the
    /// single fidelity implied by [`Sweep::with_scale`] (full size by
    /// default).
    pub fn with_fidelities(mut self, fidelities: impl IntoIterator<Item = Fidelity>) -> Self {
        self.fidelities.extend(fidelities);
        self
    }

    /// Scales every layer down by `factor` (1 = full size); the
    /// `VEGETA_QUICK` proxy shapes use 4. Shorthand for a single-entry
    /// fidelity axis; explicit [`Sweep::with_fidelities`] entries take
    /// precedence.
    pub fn with_scale(mut self, factor: usize) -> Self {
        self.scale = factor;
        self
    }

    /// Adds one core count to the grid (see [`Sweep::with_cores`]).
    pub fn with_core_count(mut self, cores: usize) -> Self {
        self.cores.push(cores.max(1));
        self
    }

    /// Adds core counts to the grid, making multi-core scale-out a
    /// first-class experiment axis: every cell runs sharded across each
    /// requested core count through [`vegeta_sim::MultiCoreSim`]
    /// (`with_cores([1, 2, 4, 8, 16])` is the classic strong-scaling
    /// sweep). With no cores axis the grid runs the classic single-core
    /// [`CoreSim`] path, byte-identical to pre-scale-out sweeps.
    pub fn with_cores(mut self, cores: impl IntoIterator<Item = usize>) -> Self {
        self.cores.extend(cores.into_iter().map(|c| c.max(1)));
        self
    }

    /// Adds one scheduler policy to the grid (see
    /// [`Sweep::with_schedulers`]).
    pub fn with_scheduler(mut self, scheduler: SchedulerPolicy) -> Self {
        self.schedulers.push(scheduler);
        self
    }

    /// Adds scheduler policies to the grid, making shard scheduling a
    /// sweepable axis: every multi-core cell runs once per policy
    /// (`with_schedulers([Static, Lpt])` pins the legacy 1D split against
    /// load-aware 2D/K-split packing). Only meaningful combined with a
    /// cores axis — the classic single-core path ignores the policy. When
    /// no policy is given, multi-core cells run the default
    /// ([`SchedulerPolicy::Lpt`]).
    pub fn with_schedulers(
        mut self,
        schedulers: impl IntoIterator<Item = SchedulerPolicy>,
    ) -> Self {
        self.schedulers.extend(schedulers);
        self
    }

    /// The grid's cores axis: `None` marks the classic single-core path.
    fn effective_cores(&self) -> Vec<Option<usize>> {
        if self.cores.is_empty() {
            vec![None]
        } else {
            self.cores.iter().map(|&c| Some(c)).collect()
        }
    }

    /// The grid's scheduler axis: the default policy when none was given.
    fn effective_schedulers(&self) -> Vec<SchedulerPolicy> {
        if self.schedulers.is_empty() {
            vec![SchedulerPolicy::default()]
        } else {
            self.schedulers.clone()
        }
    }

    /// The grid's fidelity axis: explicit entries, else the scale factor.
    fn effective_fidelities(&self) -> Vec<Fidelity> {
        if self.fidelities.is_empty() {
            vec![Fidelity::from_factor(self.scale)]
        } else {
            self.fidelities.clone()
        }
    }

    /// Replaces the simulator configuration.
    pub fn with_sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Replaces the kernel options.
    pub fn with_kernel_options(mut self, opts: KernelOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Sets the worker-thread count: 0 (the default) sizes the pool to the
    /// available parallelism, 1 forces the serial path.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Shares a trace cache across sweeps.
    pub fn with_cache(mut self, cache: Arc<TraceCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Enables or disables the static-verification preflight (on by
    /// default; see [`Session::with_preflight`]). Memoization means each
    /// distinct `(shape, kernel, sharding)` cell is verified once per
    /// sweep, not once per engine replaying it.
    pub fn with_preflight(mut self, enabled: bool) -> Self {
        self.preflight.disabled = !enabled;
        self
    }

    /// Grid cells this sweep will run.
    pub fn cell_count(&self) -> usize {
        self.engines.len()
            * self.layers.len()
            * self.effective_fidelities().len()
            * self.effective_cores().len()
            * self.effective_schedulers().len()
            * (self.sparsities.len() + self.formats.len())
    }

    fn resolved_threads(&self) -> usize {
        let wanted = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.threads
        };
        wanted.min(self.cell_count()).max(1)
    }

    /// Runs the grid and returns the report; cells appear workload-major,
    /// then fidelity, then axis entry (sparsities before formats), then
    /// core count, then scheduler policy, then engine, whatever the thread
    /// count.
    pub fn run(&self) -> SweepReport {
        // Enumerate cells in their deterministic report order.
        let axes: Vec<GridAxis> = self
            .sparsities
            .iter()
            .map(|&r| GridAxis::Pattern(r))
            .chain(self.formats.iter().map(|&f| GridAxis::Format(f)))
            .collect();
        let fidelities = self.effective_fidelities();
        let cores_axis = self.effective_cores();
        let scheduler_axis = self.effective_schedulers();
        #[allow(clippy::type_complexity)] // one-shot cell enumeration tuple
        let mut cells: Vec<(
            &Layer,
            Fidelity,
            GridAxis,
            Option<usize>,
            SchedulerPolicy,
            &EngineConfig,
        )> = Vec::with_capacity(self.cell_count());
        for layer in &self.layers {
            for &fidelity in &fidelities {
                for &axis in &axes {
                    for &cores in &cores_axis {
                        for &scheduler in &scheduler_axis {
                            for engine in &self.engines {
                                cells.push((layer, fidelity, axis, cores, scheduler, engine));
                            }
                        }
                    }
                }
            }
        }
        let threads = self.resolved_threads();
        // Host-thread budget for each cell's multi-core replay: the grid's
        // cell-level pool and the per-cell parallel simulation share one
        // machine, so each cell gets `available / threads` host threads
        // (at least one) and the grid never oversubscribes the host.
        let avail = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let cell_exec = ExecMode::ParallelHost((avail / threads).max(1));
        let hits_before = self.cache.hits();
        let misses_before = self.cache.misses();

        // Row-wise format cells share their synthesized covers: compute
        // each distinct shape once, not once per engine cell.
        let mut rw_covers: std::collections::HashMap<GemmShape, Vec<NmRatio>> =
            std::collections::HashMap::new();
        if self
            .formats
            .iter()
            .any(|f| matches!(f, FormatSpec::RowWise { m: 4 }))
        {
            for layer in &self.layers {
                for fidelity in &fidelities {
                    let shape = fidelity.shape_of(layer);
                    rw_covers
                        .entry(shape)
                        .or_insert_with(|| row_wise_covers(shape, self.unstructured_degree));
                }
            }
        }

        let run_one = |(layer, fidelity, axis, cores, scheduler, engine): &(
            &Layer,
            Fidelity,
            GridAxis,
            Option<usize>,
            SchedulerPolicy,
            &EngineConfig,
        )|
         -> RunReport {
            let shape = fidelity.shape_of(layer);
            let (spec, label) = match *axis {
                GridAxis::Pattern(ratio) => {
                    (engine.kernel_spec(ratio, self.opts), ratio.to_string())
                }
                GridAxis::Format(format) => (
                    kernel_for_format(
                        engine,
                        shape,
                        format,
                        self.opts,
                        self.unstructured_degree,
                        rw_covers.get(&shape).map(Vec::as_slice),
                    ),
                    format.to_string(),
                ),
            };
            match *cores {
                // The classic single-core path (no cores axis requested).
                None => run_cell(
                    &self.preflight,
                    engine,
                    &self.sim,
                    &self.cache,
                    layer.name,
                    label,
                    *fidelity,
                    shape,
                    &spec,
                    None,
                ),
                Some(n) => run_cell_cores(
                    &self.preflight,
                    engine,
                    &self.sim,
                    &self.cache,
                    layer.name,
                    label,
                    *fidelity,
                    shape,
                    &spec,
                    n,
                    *scheduler,
                    cell_exec,
                    None,
                ),
            }
        };

        let reports: Vec<RunReport> = if threads <= 1 {
            cells.iter().map(run_one).collect()
        } else {
            // Workers pull cell indices from a shared counter and tag each
            // report with its index, so the merged output is independent of
            // scheduling.
            let next = AtomicUsize::new(0);
            let mut indexed: Vec<(usize, RunReport)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut mine = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                let Some(cell) = cells.get(i) else { break };
                                mine.push((i, run_one(cell)));
                            }
                            mine
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("sweep worker panicked"))
                    .collect()
            });
            indexed.sort_by_key(|(i, _)| *i);
            indexed.into_iter().map(|(_, r)| r).collect()
        };

        SweepReport {
            cells: reports,
            traces_built: self.cache.misses() - misses_before,
            trace_cache_hits: self.cache.hits() - hits_before,
            cache: self.cache.stats(),
            threads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vegeta_workloads::table4;

    #[test]
    fn figure13_lineup_has_ten_entries() {
        let engines = figure13_engines();
        assert_eq!(engines.len(), 10);
        assert!(engines.last().unwrap().output_forwarding());
    }

    #[test]
    fn dense_engines_always_run_dense_kernels() {
        for engine in [
            EngineConfig::rasa_sm(),
            EngineConfig::rasa_dm(),
            EngineConfig::tmul_like(),
        ] {
            let session = Session::new(engine);
            for w in [NmRatio::D4_4, NmRatio::S2_4, NmRatio::S1_4] {
                assert_eq!(session.execution_mode(w), SparseMode::Dense);
            }
        }
    }

    #[test]
    fn stc_like_runs_1_4_layers_in_2_4_mode() {
        let session = Session::new(EngineConfig::stc_like());
        assert_eq!(session.execution_mode(NmRatio::S1_4), SparseMode::Nm2of4);
        assert_eq!(session.execution_mode(NmRatio::S2_4), SparseMode::Nm2of4);
        assert_eq!(session.execution_mode(NmRatio::D4_4), SparseMode::Dense);
    }

    #[test]
    fn vegeta_s_exploits_every_pattern() {
        let session = Session::new(EngineConfig::vegeta_s(16).unwrap());
        assert_eq!(session.execution_mode(NmRatio::S1_4), SparseMode::Nm1of4);
        assert_eq!(session.execution_mode(NmRatio::S2_4), SparseMode::Nm2of4);
        assert_eq!(session.execution_mode(NmRatio::D4_4), SparseMode::Dense);
    }

    #[test]
    fn sparse_execution_is_faster_on_a_small_layer() {
        // Scaled-down BERT-L2 for speed; the full layers run in the benches.
        let layer = &table4()[7];
        let s16 = EngineConfig::vegeta_s(16)
            .unwrap()
            .with_output_forwarding(true);
        let dm = Session::new(EngineConfig::rasa_dm()).run_layer_scaled(layer, NmRatio::D4_4, 8);
        let sp = Session::new(s16).run_layer_scaled(layer, NmRatio::S1_4, 8);
        let speedup = dm.cycles as f64 / sp.cycles as f64;
        assert!(
            speedup > 2.0,
            "1:4 on S-16-2+OF vs dense on RASA-DM: {speedup}"
        );
    }

    #[test]
    fn session_reports_are_self_describing() {
        let layer = &table4()[7];
        let report = Session::new(EngineConfig::vegeta_s(2).unwrap()).run_layer_scaled(
            layer,
            NmRatio::S2_4,
            8,
        );
        assert_eq!(report.workload, "BERT-L2");
        assert_eq!(report.engine, "VEGETA-S-2-2");
        assert_eq!(report.sparsity, "2:4");
        assert_eq!(report.kernel, "tiled-2of4-u3");
        assert_eq!(report.shape, layer.scaled_shape(8));
        assert_eq!(report.macs, layer.scaled_shape(8).macs());
        assert!(report.instructions > 0 && report.utilization() > 0.0);
    }

    #[test]
    fn sessions_share_a_cache_across_engines() {
        let cache = Arc::new(TraceCache::new());
        let layer = &table4()[7];
        // Three dense engines run the *same* dense kernel: one build.
        for engine in [
            EngineConfig::rasa_sm(),
            EngineConfig::rasa_dm(),
            EngineConfig::tmul_like(),
        ] {
            let session = Session::new(engine).with_cache(Arc::clone(&cache));
            session.run_layer_scaled(layer, NmRatio::S2_4, 8);
        }
        assert_eq!(cache.misses(), 1, "one dense trace serves all three");
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn network_runs_accumulate_layers_in_order() {
        let layers = vegeta_workloads::layers_of(vegeta_workloads::Network::Bert);
        let scaled: Vec<Layer> = layers.clone();
        let session = Session::new(EngineConfig::vegeta_s(16).unwrap());
        // Scale for test speed by running the scaled variants directly.
        let reports: Vec<RunReport> = scaled
            .iter()
            .map(|l| session.run_layer_scaled(l, NmRatio::S2_4, 8))
            .collect();
        let network = NetworkReport {
            engine: session.engine().name().to_string(),
            sparsity: "2:4".into(),
            layers: reports.clone(),
        };
        assert_eq!(network.layers.len(), 3);
        assert_eq!(
            network.total_cycles(),
            reports.iter().map(|r| r.cycles).sum::<u64>()
        );
    }

    #[test]
    fn format_runs_pick_storage_appropriate_kernels() {
        let layer = &table4()[7];
        let shape = layer.scaled_shape(8);
        let session = Session::new(EngineConfig::vegeta_s(16).unwrap());
        let dense = session.run_format("f", shape, FormatSpec::Dense);
        assert_eq!(dense.kernel, "tiled-dense-u3");
        assert_eq!(dense.format, "dense");
        assert_eq!(dense.a_values_bytes, (shape.m * shape.k * 2) as u64);
        assert_eq!(dense.a_metadata_bits, 0);
        let s24 = session.run_format("f", shape, FormatSpec::Nm(NmRatio::S2_4));
        assert_eq!(s24.kernel, "tiled-2of4-u3");
        assert_eq!(s24.sparsity, "2:4");
        assert_eq!(s24.a_values_bytes, (shape.m * shape.k) as u64);
        let rw = session.run_format("f", shape, FormatSpec::RowWise { m: 4 });
        assert!(rw.kernel.starts_with("rowwise-"));
        assert_eq!(rw.format, "rowwise:4");
        assert!(
            rw.a_values_bytes < dense.a_values_bytes,
            "80%-sparse row-wise storage must be smaller than dense"
        );
        assert!(rw.a_metadata_bits > 0);
        let csr = session.run_format("f", shape, FormatSpec::Csr);
        assert_eq!(
            csr.kernel, "vector-gemm",
            "CSR executes on the vector engine"
        );
        // The structured tile path beats the CSR-on-vector fallback.
        assert!(s24.cycles < csr.cycles);
    }

    #[test]
    fn row_wise_format_needs_flexible_nm_support() {
        let layer = &table4()[7];
        let shape = layer.scaled_shape(8);
        for engine in [EngineConfig::rasa_dm(), EngineConfig::stc_like()] {
            let report = Session::new(engine).run_format("f", shape, FormatSpec::RowWise { m: 4 });
            assert_eq!(
                report.kernel, "tiled-dense-u3",
                "engines without per-row N:M support decompress and run densely"
            );
            assert_eq!(report.format, "dense");
        }
        // Block sizes the register images cannot encode fall back to dense
        // even on flexible engines, instead of simulating a datapath the
        // storage layer refuses to pack.
        let report = Session::new(EngineConfig::vegeta_s(16).unwrap()).run_format(
            "f",
            shape,
            FormatSpec::RowWise { m: 8 },
        );
        assert_eq!(report.kernel, "tiled-dense-u3");
        assert_eq!(report.format, "dense");
    }

    #[test]
    fn format_runs_are_deterministic() {
        let layer = &table4()[7];
        let shape = layer.scaled_shape(8);
        let session = Session::new(EngineConfig::vegeta_s(16).unwrap());
        let a = session.run_format("f", shape, FormatSpec::RowWise { m: 4 });
        let b = session.run_format("f", shape, FormatSpec::RowWise { m: 4 });
        assert_eq!(a, b, "synthesized covers are seeded by shape");
    }

    #[test]
    fn sweep_grids_over_storage_formats() {
        let sweep = Sweep::new()
            .with_engines([EngineConfig::rasa_dm(), EngineConfig::vegeta_s(16).unwrap()])
            .with_layer(table4()[7])
            .with_formats([
                FormatSpec::Dense,
                FormatSpec::Nm(NmRatio::S2_4),
                FormatSpec::RowWise { m: 4 },
                FormatSpec::Csr,
            ])
            .with_scale(8)
            .with_threads(2);
        assert_eq!(sweep.cell_count(), 8);
        let report = sweep.run();
        assert_eq!(report.cells.len(), 8);
        // Axis entries keep insertion order; formats label the sparsity
        // column so existing tooling groups by them.
        assert_eq!(
            report.sparsities(),
            vec!["dense", "2:4", "rowwise:4", "csr"]
        );
        // On the dense engine every structured format degrades to the dense
        // kernel, so the cache collapses those traces (dense + 2:4 formats
        // for RASA-DM share one dense trace with the VEGETA dense cell).
        assert!(report.traces_built < 8);
        // The sparse engine exploits 2:4 storage; the dense engine cannot.
        let dense_2of4 = report
            .get("BERT-L2", "RASA-DM (VEGETA-D-1-2)", "2:4")
            .unwrap();
        let sparse_2of4 = report.get("BERT-L2", "VEGETA-S-16-2", "2:4").unwrap();
        assert!(sparse_2of4.cycles < dense_2of4.cycles);
        assert_eq!(dense_2of4.format, "dense", "dense engines store densely");
        assert_eq!(sparse_2of4.format, "2:4");
    }

    #[test]
    fn sweeps_mix_pattern_and_format_axes() {
        let report = Sweep::new()
            .with_engine(EngineConfig::vegeta_s(4).unwrap())
            .with_layer(table4()[7])
            .with_sparsity(NmRatio::S2_4)
            .with_format(FormatSpec::Csr)
            .with_scale(8)
            .with_threads(1)
            .run();
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.cells[0].sparsity, "2:4");
        assert_eq!(report.cells[1].sparsity, "csr");
    }

    #[test]
    fn fidelity_labels_and_factors() {
        assert_eq!(Fidelity::Full.to_string(), "full");
        assert_eq!(Fidelity::Quick(4).to_string(), "quick/4");
        assert_eq!(Fidelity::Quick(1).to_string(), "full");
        assert_eq!(Fidelity::from_factor(1), Fidelity::Full);
        assert_eq!(Fidelity::from_factor(8), Fidelity::Quick(8));
        assert_eq!(Fidelity::Full.factor(), 1);
        assert_eq!(Fidelity::Quick(8).factor(), 8);
        let layer = &table4()[7];
        assert_eq!(Fidelity::Full.shape_of(layer), layer.gemm_shape());
        assert_eq!(Fidelity::Quick(8).shape_of(layer), layer.scaled_shape(8));
    }

    #[test]
    fn reports_carry_streaming_accounting() {
        let layer = &table4()[7];
        let session = Session::new(EngineConfig::vegeta_s(16).unwrap());
        let report = session.run_layer_at(layer, NmRatio::S2_4, Fidelity::Quick(8));
        assert_eq!(report.fidelity, "quick/8");
        assert_eq!(
            report.insts_streamed, report.instructions,
            "every session run streams"
        );
        assert!(report.peak_resident_bytes > 0);
        // One streaming chunk is far smaller than the materialized trace.
        let trace_bytes = report.instructions * vegeta_isa::TRACE_OP_BYTES as u64;
        assert!(
            report.peak_resident_bytes < trace_bytes / 4,
            "chunked residency {} vs full trace {}",
            report.peak_resident_bytes,
            trace_bytes
        );
    }

    #[test]
    fn prebuilt_trace_runs_report_materialized_residency() {
        let shape = GemmShape::new(32, 32, 64);
        let trace = vegeta_kernels::build_trace(shape, SparseMode::Dense, KernelOptions::default());
        let report = Session::new(EngineConfig::rasa_dm()).run_trace("prebuilt", shape, &trace);
        assert_eq!(report.insts_streamed, 0, "nothing streamed");
        assert_eq!(
            report.peak_resident_bytes,
            trace.len() as u64 * vegeta_isa::TRACE_OP_BYTES as u64,
            "the whole trace was resident"
        );
    }

    #[test]
    fn session_progress_observer_sees_completion() {
        use std::sync::Mutex;
        let seen: Arc<Mutex<Vec<(String, u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let session = Session::new(EngineConfig::rasa_dm()).with_progress(Arc::new(
            move |workload: &str, done, total| {
                sink.lock()
                    .unwrap()
                    .push((workload.to_string(), done, total));
            },
        ));
        let layer = &table4()[7];
        let report = session.run_layer_at(layer, NmRatio::D4_4, Fidelity::Quick(8));
        let events = seen.lock().unwrap();
        let last = events.last().expect("at least the completion event");
        assert_eq!(last.0, "BERT-L2");
        assert_eq!(last.1, report.instructions);
        assert_eq!(last.2, report.instructions, "exact-length totals");
    }

    #[test]
    fn sweep_fidelity_axis_pins_quick_against_full() {
        // A small ad-hoc layer keeps the full-fidelity half fast.
        let layer = table4()[7];
        let report = Sweep::new()
            .with_engine(EngineConfig::vegeta_s(16).unwrap())
            .with_layer(layer)
            .with_sparsity(NmRatio::S2_4)
            .with_fidelities([Fidelity::Quick(8), Fidelity::Quick(4)])
            .with_threads(1)
            .run();
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.cells[0].fidelity, "quick/8");
        assert_eq!(report.cells[1].fidelity, "quick/4");
        assert_eq!(report.cells[0].shape, layer.scaled_shape(8));
        assert_eq!(report.cells[1].shape, layer.scaled_shape(4));
        assert!(
            report.cells[1].cycles > report.cells[0].cycles,
            "higher fidelity simulates more work"
        );
        assert_eq!(report.traces_built, 2);
        assert_eq!(report.cache.entries, 2);
        assert_eq!(
            report.cache.resident, 0,
            "sweeps stream; nothing materializes"
        );
    }

    #[test]
    fn single_core_sharded_run_matches_the_classic_path() {
        // cores = 1 through the multi-core harness: one shard, no barrier,
        // no shared traffic — cycle-identical to the classic session run.
        let layer = &table4()[7];
        let session = Session::new(EngineConfig::vegeta_s(16).unwrap());
        let classic = session.run_layer_at(layer, NmRatio::S2_4, Fidelity::Quick(8));
        let sharded = session.run_layer_cores_at(layer, NmRatio::S2_4, Fidelity::Quick(8), 1);
        assert_eq!(sharded.cycles, classic.cycles);
        assert_eq!(sharded.instructions, classic.instructions);
        assert_eq!(sharded.tile_compute, classic.tile_compute);
        assert_eq!(sharded.cores, 1);
        assert_eq!(sharded.per_core_cycles, vec![classic.cycles]);
        assert_eq!(sharded.shared_l2.shared_hits, 0, "one core cannot share");
        assert!((sharded.scaling_efficiency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sharded_layers_scale_down_cycles() {
        let layer = &table4()[7];
        let session = Session::new(EngineConfig::vegeta_s(16).unwrap());
        let mut last = u64::MAX;
        for cores in [1usize, 2, 4] {
            let report =
                session.run_layer_cores_at(layer, NmRatio::S2_4, Fidelity::Quick(4), cores);
            assert_eq!(report.cores, cores);
            assert_eq!(report.per_core_cycles.len(), cores);
            assert!(
                report.cycles <= last,
                "{cores} cores must not be slower: {} vs {last}",
                report.cycles
            );
            assert!(report.scaling_efficiency > 0.0 && report.scaling_efficiency <= 1.0);
            if cores > 1 {
                assert!(
                    report.shared_l2.shared_hits > 0,
                    "shards share B tiles through the L2"
                );
            }
            last = report.cycles;
        }
    }

    #[test]
    fn multi_core_runs_report_progress_too() {
        use std::sync::Mutex;
        let seen: Arc<Mutex<Vec<(String, u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let session = Session::new(EngineConfig::rasa_dm()).with_progress(Arc::new(
            move |workload: &str, done, total| {
                sink.lock()
                    .unwrap()
                    .push((workload.to_string(), done, total));
            },
        ));
        let layer = &table4()[7];
        let report = session.run_layer_cores_at(layer, NmRatio::D4_4, Fidelity::Quick(8), 4);
        let events = seen.lock().unwrap();
        let last = events.last().expect("at least the completion event");
        assert_eq!(last.0, "BERT-L2");
        assert_eq!(last.1, report.instructions);
        assert_eq!(last.2, report.instructions, "summed shard totals are exact");
    }

    #[test]
    fn sweep_cores_axis_grids_and_orders_deterministically() {
        let layer = table4()[7];
        let sweep = Sweep::new()
            .with_engines([EngineConfig::rasa_dm(), EngineConfig::vegeta_s(16).unwrap()])
            .with_layer(layer)
            .with_sparsity(NmRatio::S2_4)
            .with_cores([1, 4])
            .with_scale(8)
            .with_threads(2);
        assert_eq!(sweep.cell_count(), 4);
        let report = sweep.run();
        assert_eq!(report.cells.len(), 4);
        // Order: cores-major over engines within one axis entry.
        assert_eq!(report.cells[0].cores, 1);
        assert_eq!(report.cells[0].engine, "RASA-DM (VEGETA-D-1-2)");
        assert_eq!(report.cells[1].cores, 1);
        assert_eq!(report.cells[2].cores, 4);
        assert_eq!(report.cores_values(), vec![1, 4]);
        let scaling = report
            .geomean_core_scaling("VEGETA-S-16-2", "2:4", 4)
            .expect("both core counts present");
        assert!(scaling > 1.0, "4 cores must beat 1: {scaling}");
        // A sweep without a cores axis stays on the classic path.
        let classic = Sweep::new()
            .with_engine(EngineConfig::rasa_dm())
            .with_layer(layer)
            .with_sparsity(NmRatio::S2_4)
            .with_scale(8)
            .run();
        assert_eq!(classic.cells[0].cores, 1);
        assert!(classic.cells[0].per_core_cycles.is_empty());
    }

    #[test]
    fn sweep_cell_order_is_deterministic_and_complete() {
        let sweep = Sweep::new()
            .with_engines([EngineConfig::rasa_dm(), EngineConfig::vegeta_s(4).unwrap()])
            .with_layers(table4().into_iter().take(2))
            .with_sparsities([NmRatio::D4_4, NmRatio::S2_4])
            .with_scale(8);
        assert_eq!(sweep.cell_count(), 8);
        let report = sweep.run();
        assert_eq!(report.cells.len(), 8);
        // Workload-major, then sparsity, then engine.
        assert_eq!(report.cells[0].workload, "ResNet50-L1");
        assert_eq!(report.cells[0].sparsity, "4:4");
        assert_eq!(report.cells[0].engine, "RASA-DM (VEGETA-D-1-2)");
        assert_eq!(report.cells[1].engine, "VEGETA-S-4-2");
        assert_eq!(report.cells[2].sparsity, "2:4");
        assert_eq!(report.cells[4].workload, "ResNet50-L2");
    }

    #[test]
    fn sweep_shares_traces_across_engines() {
        // Dense baselines all execute the same dense kernel per layer:
        // the cache must collapse them to one build per distinct trace.
        let report = Sweep::new()
            .with_engines([
                EngineConfig::rasa_sm(),
                EngineConfig::rasa_dm(),
                EngineConfig::tmul_like(),
            ])
            .with_layer(table4()[7])
            .with_sparsity(NmRatio::S2_4)
            .with_scale(8)
            .with_threads(1)
            .run();
        assert_eq!(report.traces_built, 1);
        assert_eq!(report.trace_cache_hits, 2);
    }

    #[test]
    fn parallel_and_serial_sweeps_agree() {
        let grid = || {
            Sweep::new()
                .with_engines([
                    EngineConfig::rasa_dm(),
                    EngineConfig::stc_like(),
                    EngineConfig::vegeta_s(16).unwrap(),
                ])
                .with_layers(table4().into_iter().take(3))
                .with_sparsities([NmRatio::D4_4, NmRatio::S1_4])
                .with_scale(8)
        };
        let serial = grid().with_threads(1).run();
        let parallel = grid().with_threads(4).run();
        assert_eq!(serial.cells, parallel.cells);
        assert_eq!(serial.threads, 1);
        assert!(parallel.threads > 1);
    }

    #[test]
    fn preflight_never_perturbs_reports() {
        // The static-verification gate runs before the simulator and is
        // memoized out of repeat cells: identical runs with the preflight
        // on and off must produce byte-identical reports, single- and
        // multi-core, static and LPT alike.
        let layer = table4()[7];
        for enabled in [true, false] {
            for policy in [SchedulerPolicy::Static, SchedulerPolicy::Lpt] {
                let session = Session::new(EngineConfig::vegeta_s(16).unwrap())
                    .with_preflight(enabled)
                    .with_scheduler(policy);
                let single = session.run_layer_scaled(&layer, NmRatio::S2_4, 8);
                let multi =
                    session.run_layer_cores_at(&layer, NmRatio::S2_4, Fidelity::from_factor(8), 4);
                let baseline =
                    Session::new(EngineConfig::vegeta_s(16).unwrap()).with_scheduler(policy);
                assert_eq!(single, baseline.run_layer_scaled(&layer, NmRatio::S2_4, 8));
                assert_eq!(
                    multi,
                    baseline.run_layer_cores_at(&layer, NmRatio::S2_4, Fidelity::from_factor(8), 4)
                );
            }
        }
    }
}
