//! Pins the acceptance criterion of the streaming redesign: a
//! **full-fidelity (unscaled) Table IV layer** replays through
//! `Session::run_layer_at` on a VEGETA-S engine with peak trace-resident
//! memory bounded by the streaming chunk size — the whole dynamic trace is
//! never allocated.
//!
//! A counting global allocator tracks *live* heap bytes (allocations minus
//! frees), so the assertion is about what stays resident, not about
//! transient bookkeeping. The materialized trace would be dozens of times
//! larger than the pinned bound.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use vegeta::isa::TRACE_OP_BYTES;
use vegeta::prelude::*;

struct LiveBytesAlloc;

static LIVE: AtomicI64 = AtomicI64::new(0);
static PEAK: AtomicI64 = AtomicI64::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

fn add(bytes: usize) {
    let live = LIVE.fetch_add(bytes as i64, Ordering::Relaxed) + bytes as i64;
    PEAK.fetch_max(live, Ordering::Relaxed);
    ALLOCS.fetch_add(1, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for LiveBytesAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        add(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        add(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        add(new_size);
        LIVE.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: LiveBytesAlloc = LiveBytesAlloc;

/// Resets the peak watermark to the current live level and returns the
/// live baseline.
fn reset_peak() -> i64 {
    let live = LIVE.load(Ordering::Relaxed);
    PEAK.store(live, Ordering::Relaxed);
    live
}

// One test function: parallel test threads would perturb the global
// watermark.
#[test]
fn full_fidelity_layer_streams_in_bounded_memory() {
    // ResNet50-L6 unscaled (GEMM 256×196×2304) at 2:4 on VEGETA-S-16-2:
    // a genuine Table IV layer at full fidelity on a sparse tile engine.
    let layer = table4()
        .into_iter()
        .find(|l| l.name == "ResNet50-L6")
        .expect("Table IV layer");
    let session = Session::new(EngineConfig::vegeta_s(16).unwrap());

    // Warm up once so lazily-initialized state (thread locals, the trace
    // cache's summary map) does not count against the measured replay.
    let warm = session.run_layer_at(&layer, NmRatio::S2_4, Fidelity::Quick(8));
    assert!(warm.cycles > 0);

    let baseline = reset_peak();
    let report = session.run_layer_at(&layer, NmRatio::S2_4, Fidelity::Full);
    let peak_live_delta = PEAK.load(Ordering::Relaxed) - baseline;

    // The run really was the full layer, streamed end to end.
    assert_eq!(report.fidelity, "full");
    assert_eq!(report.shape, layer.gemm_shape());
    assert!(report.instructions > 30_000, "full layer, not a proxy");
    assert_eq!(report.insts_streamed, report.instructions);

    let materialized_bytes = report.instructions as i64 * TRACE_OP_BYTES as i64;

    // 1. The session's own accounting: peak trace residency is one chunk
    //    (the cache's memoized chunk bound, with Vec-growth slack), far
    //    below the materialized trace.
    let chunk_bytes = session
        .cache()
        .summary(layer.gemm_shape(), &KernelSpec::tiled(SparseMode::Nm2of4))
        .chunk_bytes;
    assert!(
        report.peak_resident_bytes <= 4 * chunk_bytes + 4096,
        "trace residency {} must be bounded by the chunk size {}",
        report.peak_resident_bytes,
        chunk_bytes
    );

    // 2. The allocator's view: the replay never allocated anything close
    //    to the whole trace. (The budget covers the streaming buffer, the
    //    bounded LRU cache-line map, the ROB/load-buffer rings and report
    //    strings — all independent of trace length.)
    assert!(
        peak_live_delta < materialized_bytes / 2,
        "peak live heap growth {peak_live_delta} B approaches the \
         materialized trace ({materialized_bytes} B) — streaming is not \
         bounded"
    );
    assert!(
        peak_live_delta < 256 * 1024,
        "peak live heap growth {peak_live_delta} B exceeds the fixed \
         streaming budget"
    );

    // Scale sanity: the same assertion would be impossible for the legacy
    // path — materializing alone allocates the full trace.
    let baseline = reset_peak();
    let trace = KernelSpec::tiled(SparseMode::Nm2of4).build(layer.gemm_shape());
    let peak_materialized = PEAK.load(Ordering::Relaxed) - baseline;
    assert!(
        peak_materialized >= materialized_bytes / 2,
        "sanity: materializing allocates the trace ({peak_materialized} B)"
    );
    drop(trace);
}
