//! Smoke test: the `vegeta::prelude` re-exports stay importable and usable.
//!
//! This mirrors the quickstart doctest in `crates/core/src/lib.rs` so a
//! broken prelude or a broken quickstart fails `cargo test` even when
//! doctests are skipped.

use vegeta::prelude::*;

#[test]
fn prelude_reexports_compile_and_work() {
    // Every prelude item must resolve; exercise one per module family.
    let mut rng = rand_seed(42);
    let dense = vegeta::sparse::prune::random_nm(16, 64, NmRatio::S2_4, &mut rng);
    let tile = CompressedTile::compress(&dense, NmRatio::S2_4).expect("2:4 tile compresses");
    assert_eq!(tile.decompress(), dense);

    // Type-position uses of the remaining prelude exports.
    assert!(TReg::new(0).is_ok());
    assert!(UReg::new(0).is_ok());
    assert!(VReg::new(0).is_ok());
    let _ = EngineConfig::vegeta_s(16).expect("valid design point");
    let _ = SimConfig::default();
    let _ = KernelOptions::default();
    let _ = GranularityModel::default();
    let _ = Matrix::<Bf16>::zeros(4, 4);

    // The experiment API: Session/Sweep, kernel polymorphism, reports.
    let session = Session::new(EngineConfig::stc_like());
    assert_eq!(session.execution_mode(NmRatio::S1_4), SparseMode::Nm2of4);
    let spec = KernelSpec::tiled(SparseMode::Dense);
    assert!(!spec.build(GemmShape::new(16, 16, 32)).is_empty());
    let _cache = TraceCache::new();
    let _sweep = Sweep::new();
    assert_eq!(figure13_engines().len(), 10);
    assert_eq!(figure13_sparsities().len(), 3);
    assert_eq!(geomean(&[]), None);
}

#[test]
fn quickstart_sequence_matches_doctest() {
    // Keep in sync with the doctest in crates/core/src/lib.rs.
    let mut rng = rand_seed(42);
    let dense = vegeta::sparse::prune::random_nm(16, 64, NmRatio::S2_4, &mut rng);
    let tile = CompressedTile::compress(&dense, NmRatio::S2_4).unwrap();
    assert_eq!(tile.decompress(), dense);
}
