//! Cycle-identity of the event-driven scheduler at the driver level: the
//! grid of kernel families × §VI engine classes × core counts must report
//! the same numbers whether the cores are merged by the production event
//! queue or by the retained stepped scan — and the 1-core sharded path
//! must stay identical to the classic single-core [`CoreSim`] replay.
//!
//! This is the acceptance contract of the event-driven rewrite: reported
//! cycles are computed by the per-instruction timing algebra, so the
//! faster merge loop must not move a single one.

use vegeta::prelude::*;

fn families(shape: GemmShape) -> Vec<KernelSpec> {
    vec![
        KernelSpec::Tiled {
            mode: SparseMode::Dense,
            opts: KernelOptions::default(),
        },
        KernelSpec::Tiled {
            mode: SparseMode::Nm2of4,
            opts: KernelOptions::default(),
        },
        KernelSpec::Listing1 {
            mode: SparseMode::Nm1of4,
        },
        KernelSpec::RowWise {
            row_ratios: (0..shape.m.div_ceil(4))
                .map(|r| {
                    if r % 2 == 0 {
                        NmRatio::S2_4
                    } else {
                        NmRatio::D4_4
                    }
                })
                .collect(),
        },
        KernelSpec::Vector,
    ]
}

fn engine_classes() -> Vec<EngineConfig> {
    vec![
        EngineConfig::rasa_dm(),
        EngineConfig::stc_like(),
        EngineConfig::vegeta_s(16)
            .expect("valid alpha")
            .with_output_forwarding(true),
    ]
}

#[test]
fn event_merge_is_cycle_identical_across_the_kernel_engine_core_grid() {
    // Ragged on every axis so remainder tiles and uneven accumulator
    // groups are in play.
    let shape = GemmShape::new(93, 67, 197);
    for spec in families(shape) {
        for engine in engine_classes() {
            for cores in [1usize, 2, 4, 8] {
                let run = |stepped: bool| {
                    let set = spec.shard_set(shape, cores);
                    let mut sim = MultiCoreSim::new(MultiCoreConfig::new(cores), engine.clone());
                    if stepped {
                        sim.run_sharded_stepped(set.shards, set.reduction, SchedulerPolicy::Lpt)
                    } else {
                        sim.run_sharded(set.shards, set.reduction, SchedulerPolicy::Lpt)
                    }
                };
                let event = run(false);
                let stepped = run(true);
                assert_eq!(
                    event,
                    stepped,
                    "{}/{} @ {cores} cores",
                    spec.name(),
                    engine.name()
                );
            }
        }
    }
}

#[test]
fn one_core_sharded_replay_matches_the_classic_core_sim() {
    let shape = GemmShape::new(93, 67, 197);
    for spec in families(shape) {
        for engine in engine_classes() {
            let set = spec.shard_set(shape, 1);
            assert!(set.reduction.is_none(), "1 core never K-splits");
            let mut mc = MultiCoreSim::new(MultiCoreConfig::new(1), engine.clone());
            let sharded = mc.run_sharded(set.shards, None, SchedulerPolicy::Lpt);

            let mut core = CoreSim::new(SimConfig::default(), engine.clone());
            let single = core.run_stream(spec.stream(shape));

            assert_eq!(sharded.barrier_cycles, 0, "single core pays no barrier");
            assert_eq!(
                sharded.core_cycles,
                single.core_cycles,
                "{}/{}",
                spec.name(),
                engine.name()
            );
            assert_eq!(sharded.per_core.len(), 1);
            // Every timing and cache counter matches exactly. Only the
            // byte-accounting of generator state may differ: the shard
            // stream wraps the kernel emitter in a ShardEmitter/GridSlice,
            // whose own state_bytes is a few words larger.
            let mut shard_core = sharded.per_core[0].clone();
            assert!(shard_core.peak_resident_bytes > 0);
            shard_core.peak_resident_bytes = single.peak_resident_bytes;
            assert_eq!(shard_core, single, "{}/{}", spec.name(), engine.name());
        }
    }
}
