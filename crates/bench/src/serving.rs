//! Serving-layer benchmark behind the `fig_serving` binary.
//!
//! VEGETA's evaluation measures kernels in isolation; this module asks the
//! deployment question on top of them — "what QPS does a fleet of
//! simulated VEGETA workers sustain, and what does request batching buy?"
//! It drives the `vegeta-serve` stack (frontend → batcher → worker pool)
//! over a load grid expressed in *load factors* relative to each engine's
//! calibrated single-worker capacity, so the same sweep brackets
//! saturation at any fidelity, and emits the machine-readable
//! `BENCH_serving.json` artifact the CI drivers job uploads. Latencies
//! ride the serving layer's virtual clock, so every number here is
//! deterministic in `(config, seed)`.
//!
//! [`check_serving_floor`] is CI's guard: at the lowest load point no
//! request may be shed and achieved QPS must track offered within 10%,
//! and batching must raise the saturation QPS over singleton dispatch in
//! at least one engine's single-worker configuration.

use std::sync::Arc;

use vegeta::json::JsonValue;
use vegeta::prelude::*;
use vegeta_serve::{LoadGen, ServeConfig, ServeReport, Server, ServiceMemo, Work};

/// Offered load as multiples of calibrated fleet capacity; the grid
/// brackets the saturation knee from 4x under to 4x over.
pub const LOAD_FACTORS: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];

/// Fraction of offered QPS the *lowest* load point must achieve (the CI
/// sanity floor; higher points are judged by latency stability instead,
/// see [`saturation_qps`]).
pub const SUSTAIN_FRACTION: f64 = 0.9;

/// Stability bound for the saturation knee: a load point is sustained
/// while its p99 latency stays within this factor of the same curve's
/// lowest-load p99. An overloaded queue drags p99 far past this no matter
/// the fidelity, which is what makes the knee self-normalizing.
pub const SUSTAIN_P99_FACTOR: f64 = 4.0;

/// The engine classes the serving sweep compares: the dense SOTA baseline
/// and the flexible VEGETA-S design (the two ends of the §VI spectrum).
pub fn serving_engines() -> Vec<EngineConfig> {
    vec![
        EngineConfig::rasa_dm(),
        EngineConfig::vegeta_s(16)
            .expect("valid design")
            .with_output_forwarding(true),
    ]
}

/// Fleet sizes the sweep serves at.
pub fn serving_worker_counts(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 4]
    } else {
        vec![1, 2, 4, 8]
    }
}

/// One serving measurement.
#[derive(Debug, Clone)]
pub struct ServingCell {
    /// Offered load relative to calibrated fleet capacity.
    pub load_factor: f64,
    /// Whether request batching was enabled.
    pub batched: bool,
    /// The full serving report.
    pub report: ServeReport,
}

impl ServingCell {
    /// The cell as JSON: the serving report with the sweep coordinates
    /// (`load_factor`, `batched`) prepended.
    pub fn to_json_value(&self) -> JsonValue {
        let mut fields = vec![
            ("load_factor".into(), self.load_factor.into()),
            ("batched".into(), JsonValue::Bool(self.batched)),
        ];
        if let JsonValue::Object(report) = self.report.to_json_value() {
            fields.extend(report);
        }
        JsonValue::Object(fields)
    }
}

/// The serving config every sweep cell starts from.
fn cell_config(engine: &EngineConfig, fidelity: Fidelity) -> ServeConfig {
    ServeConfig::new(engine.clone()).with_fidelity(fidelity)
}

/// Calibrates one engine's single-worker capacity in QPS: the mix-weighted
/// mean service time of the default workload mix, inverted. The
/// simulations run through `memo`, so the sweep itself reuses them.
pub fn calibrate_capacity_qps(
    engine: &EngineConfig,
    fidelity: Fidelity,
    memo: &ServiceMemo,
) -> f64 {
    let cfg = cell_config(engine, fidelity);
    let server = Server::new(cfg.clone()).with_service_memo(Arc::clone(memo));
    let pool = server.pool();
    let mut weighted_us = 0.0;
    let mut total_weight = 0.0;
    for entry in vegeta_serve::default_mix() {
        let key = Work::Layer {
            layer: entry.layer,
            weights: entry.weights,
        }
        .resolve(&cfg.engine, cfg.opts, cfg.fidelity)
        .expect("default mix layers are well-formed");
        let outcome = {
            let cached = memo
                .lock()
                .expect("service memo poisoned")
                .get(&key)
                .copied();
            match cached {
                Some(o) => o,
                None => {
                    let o = pool.simulate(&key);
                    memo.lock().expect("service memo poisoned").insert(key, o);
                    o
                }
            }
        };
        weighted_us += outcome.service_us as f64 * entry.weight;
        total_weight += entry.weight;
    }
    1e6 / (weighted_us / total_weight)
}

/// Runs the serving grid for one engine: worker counts × load factors ×
/// {batched, singleton}, `requests` Poisson arrivals per cell at `seed`.
/// Offered QPS at each cell is `factor × capacity × workers`, with the
/// capacity calibrated per engine so the grid brackets saturation at any
/// fidelity.
pub fn run_serving_sweep(
    engine: &EngineConfig,
    fidelity: Fidelity,
    worker_counts: &[usize],
    requests: usize,
    seed: u64,
) -> Vec<ServingCell> {
    let memo: ServiceMemo = Arc::default();
    let capacity = calibrate_capacity_qps(engine, fidelity, &memo);
    let cache = TraceCache::shared();
    let mut cells = Vec::new();
    for &workers in worker_counts {
        for &factor in &LOAD_FACTORS {
            let qps = factor * capacity * workers as f64;
            let load = LoadGen::new(qps, requests).with_seed(seed);
            for batched in [true, false] {
                let mut cfg = cell_config(engine, fidelity).with_workers(workers);
                if !batched {
                    cfg = cfg.without_batching();
                }
                let report = Server::new(cfg)
                    .with_cache(Arc::clone(&cache))
                    .with_service_memo(Arc::clone(&memo))
                    .serve(&load);
                cells.push(ServingCell {
                    load_factor: factor,
                    batched,
                    report,
                });
            }
        }
    }
    cells
}

/// The saturation QPS of one `(workers, batched)` curve: the highest
/// offered QPS the fleet *sustained*, or 0.0 if no point qualified.
///
/// A point is sustained when nothing was shed and its p99 latency stays
/// within [`SUSTAIN_P99_FACTOR`] of the curve's own lowest-load p99 — an
/// unstable queue blows the tail up by orders of magnitude, while a
/// loaded-but-stable one keeps it near the service-plus-window baseline,
/// at any fidelity or run length.
pub fn saturation_qps(cells: &[ServingCell], workers: usize, batched: bool) -> f64 {
    let curve: Vec<&ServingCell> = cells
        .iter()
        .filter(|c| c.batched == batched && c.report.workers == workers)
        .collect();
    let Some(baseline) = curve
        .iter()
        .min_by(|a, b| a.load_factor.total_cmp(&b.load_factor))
        .map(|c| c.report.p99_latency_us.max(1))
    else {
        return 0.0;
    };
    curve
        .iter()
        .filter(|c| {
            c.report.shed == 0
                && c.report.p99_latency_us <= (SUSTAIN_P99_FACTOR * baseline as f64) as u64
        })
        .map(|c| c.report.offered_qps)
        .fold(0.0, f64::max)
}

/// Wraps per-engine serving cells into the `BENCH_serving.json` document:
/// the QPS-vs-workers saturation curves per engine (batched and
/// singleton), plus every raw cell.
pub fn serving_report(mode: &str, runs: &[(String, Vec<ServingCell>)]) -> JsonValue {
    let mut saturation = Vec::new();
    let mut all_cells = Vec::new();
    for (engine, cells) in runs {
        let workers: Vec<usize> = {
            let mut w: Vec<usize> = cells.iter().map(|c| c.report.workers).collect();
            w.sort_unstable();
            w.dedup();
            w
        };
        let curve = |batched: bool| {
            JsonValue::Object(
                workers
                    .iter()
                    .map(|&w| {
                        (
                            w.to_string(),
                            JsonValue::from(saturation_qps(cells, w, batched)),
                        )
                    })
                    .collect(),
            )
        };
        saturation.push((
            engine.clone(),
            JsonValue::Object(vec![
                ("batched".into(), curve(true)),
                ("singleton".into(), curve(false)),
            ]),
        ));
        all_cells.extend(cells.iter().map(ServingCell::to_json_value));
    }
    JsonValue::Object(vec![
        ("report".into(), "fig_serving".into()),
        ("mode".into(), mode.into()),
        (
            "load_factors".into(),
            JsonValue::Array(LOAD_FACTORS.iter().map(|&f| JsonValue::from(f)).collect()),
        ),
        ("sustain_fraction".into(), SUSTAIN_FRACTION.into()),
        ("sustain_p99_factor".into(), SUSTAIN_P99_FACTOR.into()),
        (
            "saturation_qps_vs_workers".into(),
            JsonValue::Object(saturation),
        ),
        ("cells".into(), JsonValue::Array(all_cells)),
    ])
}

/// CI's serving sanity floor over one engine's cells:
///
/// * at the lowest load point of every `(workers, batched)` curve nothing
///   is shed and achieved QPS reaches [`SUSTAIN_FRACTION`] of offered;
/// * every completed cell reports a positive, ordered latency tail
///   (p50 ≤ p99, p99 > 0);
/// * nothing was rejected (the generated load is all well-formed);
/// * batching sustains a saturation QPS strictly above singleton dispatch
///   on the single-worker curve.
///
/// # Errors
///
/// A human-readable description of the first violated floor.
pub fn check_serving_floor(engine: &str, cells: &[ServingCell]) -> Result<(), String> {
    if cells.is_empty() {
        return Err(format!("{engine}: no serving cells"));
    }
    for cell in cells {
        let r = &cell.report;
        let who = format!(
            "{engine} at {} workers, factor {}, {}",
            r.workers,
            cell.load_factor,
            if cell.batched { "batched" } else { "singleton" }
        );
        if r.rejected > 0 {
            return Err(format!("{who}: {} generated requests rejected", r.rejected));
        }
        if r.completed > 0 && (r.p99_latency_us == 0 || r.p50_latency_us > r.p99_latency_us) {
            return Err(format!(
                "{who}: degenerate latency tail p50 {} / p99 {}",
                r.p50_latency_us, r.p99_latency_us
            ));
        }
        if (cell.load_factor - LOAD_FACTORS[0]).abs() < f64::EPSILON {
            if r.shed > 0 {
                return Err(format!("{who}: shed {} at the lowest load point", r.shed));
            }
            if r.achieved_qps < SUSTAIN_FRACTION * r.offered_qps {
                return Err(format!(
                    "{who}: achieved {:.0} QPS below {:.0}% of offered {:.0}",
                    r.achieved_qps,
                    SUSTAIN_FRACTION * 100.0,
                    r.offered_qps
                ));
            }
        }
    }
    let batched = saturation_qps(cells, 1, true);
    let singleton = saturation_qps(cells, 1, false);
    if batched <= singleton {
        return Err(format!(
            "{engine}: batching does not raise single-worker saturation \
             ({batched:.0} vs {singleton:.0} QPS)"
        ));
    }
    Ok(())
}

/// Writes `BENCH_serving.json` into `$VEGETA_CSV_DIR` (when set) or the
/// workspace root; returns the path on success. Like the scaling report
/// this is a CI artifact (gitignored), not a committed baseline.
pub fn write_serving_json(doc: &JsonValue) -> Option<std::path::PathBuf> {
    crate::write_artifact_json("BENCH_serving.json", doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cells() -> (EngineConfig, Vec<ServingCell>) {
        let engine = EngineConfig::vegeta_s(16)
            .unwrap()
            .with_output_forwarding(true);
        // Quick(4) keeps service times in the 5-7 us range — large enough
        // that the load grid actually brackets saturation.
        let cells = run_serving_sweep(&engine, Fidelity::Quick(4), &[1], 96, 13);
        (engine, cells)
    }

    #[test]
    fn sweep_brackets_saturation_and_passes_the_floor() {
        let (engine, cells) = quick_cells();
        assert_eq!(cells.len(), LOAD_FACTORS.len() * 2);
        check_serving_floor(engine.name(), &cells).expect("floor holds");
        // The overload end must actually overload the singleton curve.
        let worst = cells
            .iter()
            .filter(|c| !c.batched)
            .find(|c| (c.load_factor - 4.0).abs() < f64::EPSILON)
            .expect("4x singleton cell");
        assert!(
            worst.report.achieved_qps < worst.report.offered_qps,
            "4x offered load should not be fully served unbatched"
        );
    }

    #[test]
    fn serving_report_serializes_curves_and_cells() {
        let (engine, cells) = quick_cells();
        let doc = serving_report("test", &[(engine.name().to_string(), cells.clone())]);
        let parsed = JsonValue::parse(&doc.to_string()).expect("valid JSON");
        let curves = parsed
            .get("saturation_qps_vs_workers")
            .and_then(|s| s.get(engine.name()))
            .expect("engine curves");
        let batched = curves
            .get("batched")
            .and_then(|c| c.get("1"))
            .and_then(JsonValue::as_f64)
            .expect("batched 1-worker saturation");
        let singleton = curves
            .get("singleton")
            .and_then(|c| c.get("1"))
            .and_then(JsonValue::as_f64)
            .expect("singleton 1-worker saturation");
        assert!(
            batched > singleton,
            "batched saturation {batched:.0} must beat singleton {singleton:.0}"
        );
        assert_eq!(
            parsed
                .get("cells")
                .and_then(JsonValue::as_array)
                .map(<[_]>::len),
            Some(cells.len())
        );
    }

    #[test]
    fn floor_rejects_degenerate_curves() {
        let (engine, mut cells) = quick_cells();
        // Forge a shed at the lowest load point.
        let idx = cells
            .iter()
            .position(|c| (c.load_factor - LOAD_FACTORS[0]).abs() < f64::EPSILON)
            .unwrap();
        cells[idx].report.shed = 3;
        let err = check_serving_floor(engine.name(), &cells).unwrap_err();
        assert!(err.contains("shed"), "{err}");
        assert!(check_serving_floor("none", &[]).is_err());
    }
}
