//! The performance gate behind the `perf_gate` binary and the CI
//! `perf-gate` job.
//!
//! Two halves:
//!
//! * **Regression gate** — [`compare_geomeans`] diffs a freshly computed
//!   Fig. 13 geomean-speedup document against the committed
//!   `BENCH_fig13.json` baseline within a relative tolerance
//!   ([`GEOMEAN_TOLERANCE`], ±2%); CI fails on any drift, so performance
//!   changes must update the baseline in the same PR that causes them.
//! * **Throughput report** — [`run_perf_cells`] replays the pinned layer
//!   set ([`pinned_layers`], one layer per source network) on one engine
//!   per §VI engine class ([`perf_gate_engines`]) at the requested
//!   fidelities through the streaming pipeline, and [`perf_report`] wraps
//!   the cells (cycles, wall-clock, simulated insts/sec, peak resident
//!   bytes) into the machine-readable `BENCH_perf.json` artifact.
//!
//! The simulated cycle counts are deterministic; only the wall-clock
//! columns vary by host, which is why `BENCH_perf.json` is a workflow
//! artifact rather than a committed baseline.

use std::time::Instant;

use vegeta::json::JsonValue;
use vegeta::prelude::*;

/// Maximum relative geomean drift the gate accepts by default (±2%).
pub const GEOMEAN_TOLERANCE: f64 = 0.02;

/// The environment variable that overrides the default gate tolerance
/// (a fraction, e.g. `0.05` for ±5%); an explicit `--tolerance` flag wins
/// over it.
pub const TOLERANCE_ENV: &str = "VEGETA_PERF_TOL";

/// Resolves one positive, finite gate parameter from its three sources,
/// strongest first: an explicit flag, an environment variable, then
/// `default` (which is `None` for opt-in gates).
///
/// Every gate parameter shares the same refusal rule: a NaN value would
/// silently pass everything and a non-positive one fail everything — in
/// both cases a gate checking criteria nobody chose — so bad values from
/// either source are errors, never ignored. `kind` finishes the error
/// message (e.g. `"fraction (e.g. 0.02 for ±2%)"`).
fn resolve_gate_value(
    flag: Option<f64>,
    flag_name: &str,
    env: Option<&str>,
    env_name: &str,
    kind: &str,
    default: Option<f64>,
) -> Result<Option<f64>, String> {
    if let Some(v) = flag {
        return if v.is_finite() && v > 0.0 {
            Ok(Some(v))
        } else {
            Err(format!("{flag_name} {v} is not a positive {kind}"))
        };
    }
    match env {
        None => Ok(default),
        Some(raw) => match raw.trim().parse::<f64>() {
            Ok(v) if v.is_finite() && v > 0.0 => Ok(Some(v)),
            _ => Err(format!("{env_name}='{raw}' is not a positive {kind}")),
        },
    }
}

/// Resolves the gate tolerance from its three sources, strongest first:
/// the `--tolerance` flag, the [`TOLERANCE_ENV`] environment variable,
/// then the [`GEOMEAN_TOLERANCE`] default.
///
/// # Errors
///
/// A human-readable message when the chosen value (flag or environment)
/// is not a positive finite fraction (see `resolve_gate_value`'s
/// refusal rule).
pub fn resolve_tolerance(flag: Option<f64>, env: Option<&str>) -> Result<f64, String> {
    resolve_gate_value(
        flag,
        "--tolerance",
        env,
        TOLERANCE_ENV,
        "fraction (e.g. 0.02 for ±2%)",
        Some(GEOMEAN_TOLERANCE),
    )
    .map(|t| t.expect("tolerance has a default"))
}

/// The environment variable that sets the replay-throughput floor
/// (simulated instructions per wall-clock second, e.g. `250000`); an
/// explicit `--min-insts-per-sec` flag wins over it. Unset means the
/// throughput gate is off — wall-clock floors are host-dependent, so CI
/// opts in with a value calibrated to its runners.
pub const MIN_IPS_ENV: &str = "VEGETA_PERF_MIN_IPS";

/// Resolves the throughput floor from its three sources, strongest first:
/// the `--min-insts-per-sec` flag, the [`MIN_IPS_ENV`] environment
/// variable, then `None` (gate off).
///
/// # Errors
///
/// A human-readable message when the chosen value (flag or environment)
/// is not a positive finite rate (see `resolve_gate_value`'s refusal
/// rule).
pub fn resolve_min_ips(flag: Option<f64>, env: Option<&str>) -> Result<Option<f64>, String> {
    resolve_gate_value(
        flag,
        "--min-insts-per-sec",
        env,
        MIN_IPS_ENV,
        "rate (e.g. 250000)",
        None,
    )
}

/// The environment variable that sets the multi-core replay-throughput
/// floor (simulated instructions per wall-clock second across the
/// [`MC_PERF_CORES`]-core cells); an explicit `--min-multicore-ips` flag
/// wins over it. Unset means the gate is off, like [`MIN_IPS_ENV`].
pub const MIN_MC_IPS_ENV: &str = "VEGETA_PERF_MIN_MC_IPS";

/// Resolves the multi-core throughput floor from its three sources,
/// strongest first: the `--min-multicore-ips` flag, the
/// [`MIN_MC_IPS_ENV`] environment variable, then `None` (gate off).
///
/// # Errors
///
/// A human-readable message when the chosen value (flag or environment)
/// is not a positive finite rate (see `resolve_gate_value`'s refusal
/// rule).
pub fn resolve_min_multicore_ips(
    flag: Option<f64>,
    env: Option<&str>,
) -> Result<Option<f64>, String> {
    resolve_gate_value(
        flag,
        "--min-multicore-ips",
        env,
        MIN_MC_IPS_ENV,
        "rate (e.g. 250000)",
        None,
    )
}

/// Gates the cells' `geomean_sim_insts_per_sec` against a throughput
/// floor, returning the achieved geomean on success.
///
/// # Errors
///
/// A human-readable message when the geomean is below `min_ips` (or
/// cannot be computed because there are no cells).
pub fn check_throughput_floor(cells: &[PerfCell], min_ips: f64) -> Result<f64, String> {
    let rates: Vec<f64> = cells.iter().map(PerfCell::sim_insts_per_sec).collect();
    let Some(achieved) = geomean(&rates) else {
        return Err("no perf cells to gate".into());
    };
    if achieved >= min_ips {
        Ok(achieved)
    } else {
        Err(format!(
            "geomean {achieved:.0} sim insts/sec is below the {min_ips:.0} floor \
             ({:.1}% of it)",
            achieved / min_ips * 100.0
        ))
    }
}

/// One timed streamed replay of the perf set.
#[derive(Debug, Clone)]
pub struct PerfCell {
    /// The underlying simulation report.
    pub report: RunReport,
    /// Host wall-clock seconds the replay took (trace generation +
    /// simulation; nondeterministic).
    pub wall_seconds: f64,
}

impl PerfCell {
    /// Simulated instructions per wall-clock second — the streaming
    /// pipeline's replay throughput.
    pub fn sim_insts_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.report.instructions as f64 / self.wall_seconds
    }

    /// The cell as a JSON object.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("workload".into(), self.report.workload.as_str().into()),
            ("engine".into(), self.report.engine.as_str().into()),
            ("sparsity".into(), self.report.sparsity.as_str().into()),
            ("fidelity".into(), self.report.fidelity.as_str().into()),
            ("m".into(), self.report.shape.m.into()),
            ("n".into(), self.report.shape.n.into()),
            ("k".into(), self.report.shape.k.into()),
            ("cores".into(), self.report.cores.into()),
            ("cycles".into(), self.report.cycles.into()),
            ("instructions".into(), self.report.instructions.into()),
            ("insts_streamed".into(), self.report.insts_streamed.into()),
            (
                "peak_resident_bytes".into(),
                self.report.peak_resident_bytes.into(),
            ),
            ("wall_seconds".into(), self.wall_seconds.into()),
            ("sim_insts_per_sec".into(), self.sim_insts_per_sec().into()),
        ])
    }
}

/// The pinned perf-gate layer set: one Table IV layer per source network,
/// chosen small enough that full-fidelity replays stay CI-friendly.
pub fn pinned_layers() -> Vec<Layer> {
    table4()
        .into_iter()
        .filter(|l| matches!(l.name, "ResNet50-L6" | "BERT-L2" | "GPT-L1"))
        .collect()
}

/// One engine per §VI engine class: the dense SOTA baseline, the
/// fixed-pattern sparse engine, and the flexible VEGETA-S design.
pub fn perf_gate_engines() -> Vec<EngineConfig> {
    vec![
        EngineConfig::rasa_dm(),
        EngineConfig::stc_like(),
        EngineConfig::vegeta_s(16)
            .expect("valid alpha")
            .with_output_forwarding(true),
    ]
}

/// Replays `layers` × [`perf_gate_engines`] at 2:4 weights for every
/// requested fidelity, timing each streamed replay. One shared trace cache
/// memoizes the generator summaries across engines.
pub fn run_perf_cells(layers: &[Layer], fidelities: &[Fidelity]) -> Vec<PerfCell> {
    let cache = std::sync::Arc::new(TraceCache::new());
    let mut cells = Vec::new();
    for layer in layers {
        for &fidelity in fidelities {
            for engine in perf_gate_engines() {
                let session = Session::new(engine).with_cache(std::sync::Arc::clone(&cache));
                let start = Instant::now();
                let report = session.run_layer_at(layer, NmRatio::S2_4, fidelity);
                cells.push(PerfCell {
                    report,
                    wall_seconds: start.elapsed().as_secs_f64(),
                });
            }
        }
    }
    cells
}

/// Core count the multi-core perf cells shard at (matches the scaling
/// floor's pinned point).
pub const MC_PERF_CORES: usize = 8;

/// Replays `layers` × [`perf_gate_engines`] at 2:4 weights sharded across
/// [`MC_PERF_CORES`] simulated cores (LPT 2D/K-split plans, host-parallel
/// replay under [`ExecMode::Auto`] — so `VEGETA_HOST_THREADS` and the
/// host's available parallelism govern the fan-out), timing each run.
/// These cells feed the `geomean_multicore_insts_per_sec` summary and the
/// opt-in `--min-multicore-ips` floor.
pub fn run_multicore_perf_cells(layers: &[Layer], fidelity: Fidelity) -> Vec<PerfCell> {
    let cache = std::sync::Arc::new(TraceCache::new());
    let mut cells = Vec::new();
    for layer in layers {
        for engine in perf_gate_engines() {
            let session = Session::new(engine).with_cache(std::sync::Arc::clone(&cache));
            let start = Instant::now();
            let report = session.run_layer_cores_at(layer, NmRatio::S2_4, fidelity, MC_PERF_CORES);
            cells.push(PerfCell {
                report,
                wall_seconds: start.elapsed().as_secs_f64(),
            });
        }
    }
    cells
}

/// Wraps perf cells into the `BENCH_perf.json` document. The top-level
/// `geomean_sim_insts_per_sec` and `geomean_multicore_insts_per_sec`
/// fields summarize replay throughput (single-core streamed and
/// [`MC_PERF_CORES`]-core host-parallel respectively) across their cells
/// in one number each, so workflow artifacts can be skimmed (and trended)
/// without re-aggregating the per-cell rows.
pub fn perf_report(mode: &str, cells: &[PerfCell], mc_cells: &[PerfCell]) -> JsonValue {
    let rates: Vec<f64> = cells.iter().map(PerfCell::sim_insts_per_sec).collect();
    let mc_rates: Vec<f64> = mc_cells.iter().map(PerfCell::sim_insts_per_sec).collect();
    JsonValue::Object(vec![
        ("report".into(), "perf_gate".into()),
        ("mode".into(), mode.into()),
        ("tolerance".into(), GEOMEAN_TOLERANCE.into()),
        ("cells".into(), (cells.len() + mc_cells.len()).into()),
        (
            "geomean_sim_insts_per_sec".into(),
            geomean(&rates).unwrap_or(0.0).into(),
        ),
        (
            "geomean_multicore_insts_per_sec".into(),
            geomean(&mc_rates).unwrap_or(0.0).into(),
        ),
        (
            "results".into(),
            JsonValue::Array(cells.iter().map(PerfCell::to_json_value).collect()),
        ),
        (
            "multicore_results".into(),
            JsonValue::Array(mc_cells.iter().map(PerfCell::to_json_value).collect()),
        ),
    ])
}

/// Writes `BENCH_perf.json` into `$VEGETA_CSV_DIR` (when set) or the
/// workspace root; returns the path on success.
pub fn write_perf_json(doc: &JsonValue) -> Option<std::path::PathBuf> {
    crate::write_artifact_json("BENCH_perf.json", doc)
}

/// Diffs every `geomean_speedup_vs_baseline` entry of `baseline` against
/// `fresh` within relative `tolerance`.
///
/// Returns the number of geomeans compared; a baseline entry that is
/// missing from `fresh`, mistyped, or drifted beyond tolerance is a
/// failure.
///
/// # Errors
///
/// One human-readable line per failed comparison.
pub fn compare_geomeans(
    baseline: &JsonValue,
    fresh: &JsonValue,
    tolerance: f64,
) -> Result<usize, Vec<String>> {
    let section = "geomean_speedup_vs_baseline";
    let mut failures = Vec::new();
    let Some(JsonValue::Object(sparsities)) = baseline.get(section) else {
        return Err(vec![format!("baseline has no '{section}' object")]);
    };
    let mut compared = 0usize;
    for (sparsity, engines) in sparsities {
        let JsonValue::Object(engines) = engines else {
            failures.push(format!("baseline '{sparsity}' entry is not an object"));
            continue;
        };
        for (engine, value) in engines {
            let Some(base) = value.as_f64() else {
                failures.push(format!("baseline {sparsity}/{engine} is not a number"));
                continue;
            };
            let got = fresh
                .get(section)
                .and_then(|s| s.get(sparsity))
                .and_then(|e| e.get(engine))
                .and_then(JsonValue::as_f64);
            match got {
                None => failures.push(format!(
                    "{sparsity}/{engine}: missing from the fresh sweep (baseline {base:.4})"
                )),
                Some(fresh_v) => {
                    let drift = (fresh_v - base) / base;
                    if drift.abs() > tolerance {
                        failures.push(format!(
                            "{sparsity}/{engine}: geomean {fresh_v:.4} vs baseline {base:.4} \
                             ({:+.2}% > ±{:.0}%)",
                            drift * 100.0,
                            tolerance * 100.0
                        ));
                    } else {
                        compared += 1;
                    }
                }
            }
        }
    }
    if failures.is_empty() {
        Ok(compared)
    } else {
        Err(failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(geomeans: &[(&str, &[(&str, f64)])]) -> JsonValue {
        JsonValue::Object(vec![(
            "geomean_speedup_vs_baseline".into(),
            JsonValue::Object(
                geomeans
                    .iter()
                    .map(|(sparsity, engines)| {
                        (
                            sparsity.to_string(),
                            JsonValue::Object(
                                engines
                                    .iter()
                                    .map(|(e, v)| (e.to_string(), JsonValue::from(*v)))
                                    .collect(),
                            ),
                        )
                    })
                    .collect(),
            ),
        )])
    }

    #[test]
    fn identical_geomeans_pass() {
        let base = doc(&[("2:4", &[("VEGETA-S-16-2", 2.2), ("STC", 1.9)])]);
        assert_eq!(compare_geomeans(&base, &base.clone(), 0.02), Ok(2));
    }

    #[test]
    fn drift_within_tolerance_passes() {
        let base = doc(&[("1:4", &[("VEGETA-S-16-2", 3.74)])]);
        let fresh = doc(&[("1:4", &[("VEGETA-S-16-2", 3.74 * 1.015)])]);
        assert_eq!(compare_geomeans(&base, &fresh, 0.02), Ok(1));
    }

    #[test]
    fn perturbed_geomean_beyond_tolerance_fails() {
        let base = doc(&[("1:4", &[("VEGETA-S-16-2", 3.74), ("STC", 2.0)])]);
        let fresh = doc(&[("1:4", &[("VEGETA-S-16-2", 3.74 * 1.05), ("STC", 2.0)])]);
        let failures = compare_geomeans(&base, &fresh, 0.02).unwrap_err();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("VEGETA-S-16-2"), "{failures:?}");
        // Regressions (slowdowns) are caught symmetrically.
        let slower = doc(&[("1:4", &[("VEGETA-S-16-2", 3.74 * 0.9), ("STC", 2.0)])]);
        assert!(compare_geomeans(&base, &slower, 0.02).is_err());
    }

    #[test]
    fn missing_engine_or_section_fails() {
        let base = doc(&[("2:4", &[("VEGETA-S-16-2", 2.2)])]);
        let empty = doc(&[("2:4", &[])]);
        let failures = compare_geomeans(&base, &empty, 0.02).unwrap_err();
        assert!(failures[0].contains("missing"));
        assert!(compare_geomeans(&JsonValue::Object(vec![]), &base, 0.02).is_err());
    }

    #[test]
    fn tolerance_resolution_orders_flag_env_default() {
        // Default when neither source is set.
        assert_eq!(resolve_tolerance(None, None), Ok(GEOMEAN_TOLERANCE));
        // The environment variable overrides the default.
        assert_eq!(resolve_tolerance(None, Some("0.05")), Ok(0.05));
        assert_eq!(resolve_tolerance(None, Some(" 0.1 ")), Ok(0.1));
        // An explicit flag wins over the environment.
        assert_eq!(resolve_tolerance(Some(0.01), Some("0.5")), Ok(0.01));
        // Garbage and non-positive env values are refused, not ignored.
        for bad in ["2%", "", "-0.02", "0", "NaN", "inf"] {
            let err = resolve_tolerance(None, Some(bad)).unwrap_err();
            assert!(err.contains(TOLERANCE_ENV), "{err}");
        }
        // The flag is held to the same standard: a NaN tolerance would
        // pass everything, a non-positive one fail everything.
        for bad in [f64::NAN, f64::INFINITY, 0.0, -0.02] {
            let err = resolve_tolerance(Some(bad), None).unwrap_err();
            assert!(err.contains("--tolerance"), "{err}");
        }
    }

    #[test]
    fn min_ips_resolution_orders_flag_env_off() {
        // The gate is off unless a source asks for it.
        assert_eq!(resolve_min_ips(None, None), Ok(None));
        // The environment variable turns it on.
        assert_eq!(resolve_min_ips(None, Some("250000")), Ok(Some(250_000.0)));
        assert_eq!(resolve_min_ips(None, Some(" 1e5 ")), Ok(Some(100_000.0)));
        // An explicit flag wins over the environment.
        assert_eq!(resolve_min_ips(Some(5e4), Some("250000")), Ok(Some(5e4)));
        // Garbage and non-positive env values are refused, not ignored.
        for bad in ["fast", "", "-1", "0", "NaN", "inf"] {
            let err = resolve_min_ips(None, Some(bad)).unwrap_err();
            assert!(err.contains(MIN_IPS_ENV), "{err}");
        }
        // The flag is held to the same standard.
        for bad in [f64::NAN, f64::INFINITY, 0.0, -250_000.0] {
            let err = resolve_min_ips(Some(bad), None).unwrap_err();
            assert!(err.contains("--min-insts-per-sec"), "{err}");
        }
    }

    #[test]
    fn throughput_floor_gates_the_geomean() {
        let cell = |instructions: u64, wall_seconds: f64| PerfCell {
            report: RunReport {
                workload: "test".into(),
                engine: "test".into(),
                sparsity: "2:4".into(),
                fidelity: "full".into(),
                kernel: "test".into(),
                format: "-".into(),
                a_values_bytes: 0,
                a_metadata_bits: 0,
                shape: GemmShape::new(16, 16, 16),
                cycles: 1,
                instructions,
                tile_compute: 0,
                engine_busy_cycles: 0,
                insts_streamed: instructions,
                peak_resident_bytes: 1,
                macs: 0,
                core_ghz: 2.0,
                cores: 1,
                scheduler: "-".into(),
                per_core_cycles: Vec::new(),
                shared_l2: Default::default(),
                scaling_efficiency: 1.0,
            },
            wall_seconds,
        };
        // Two cells at 1e6 and 1e4 insts/sec: geomean 1e5.
        let cells = [cell(1_000_000, 1.0), cell(10_000, 1.0)];
        let achieved = check_throughput_floor(&cells, 99_000.0).expect("above floor");
        assert!((achieved - 1e5).abs() / 1e5 < 1e-9, "{achieved}");
        let err = check_throughput_floor(&cells, 101_000.0).unwrap_err();
        assert!(err.contains("below the 101000 floor"), "{err}");
        assert!(check_throughput_floor(&[], 1.0).is_err(), "empty set");
    }

    #[test]
    fn pinned_set_covers_every_network_and_engine_class() {
        let layers = pinned_layers();
        assert_eq!(layers.len(), 3);
        let networks: std::collections::HashSet<_> = layers.iter().map(|l| l.network).collect();
        assert_eq!(networks.len(), 3, "one layer per source network");
        assert_eq!(perf_gate_engines().len(), 3);
    }

    #[test]
    fn perf_cells_stream_and_serialize() {
        let layers = pinned_layers();
        let cells = run_perf_cells(&layers[..1], &[Fidelity::Quick(8)]);
        assert_eq!(cells.len(), 3);
        for cell in &cells {
            assert_eq!(cell.report.fidelity, "quick/8");
            assert_eq!(cell.report.insts_streamed, cell.report.instructions);
            assert!(cell.report.peak_resident_bytes > 0);
        }
        let doc = perf_report("test", &cells, &[]);
        let parsed = JsonValue::parse(&doc.to_string()).expect("valid JSON");
        assert_eq!(
            parsed
                .get("results")
                .and_then(JsonValue::as_array)
                .map(<[_]>::len),
            Some(3)
        );
        // The top-level summary is the geomean of the per-cell rates.
        let rates: Vec<f64> = cells.iter().map(PerfCell::sim_insts_per_sec).collect();
        let expect = geomean(&rates).expect("three positive rates");
        let got = parsed
            .get("geomean_sim_insts_per_sec")
            .and_then(JsonValue::as_f64)
            .expect("summary field present");
        assert!(((got - expect) / expect).abs() < 1e-9, "{got} vs {expect}");
        assert!(got > 0.0);
    }

    #[test]
    fn multicore_cells_shard_and_summarize() {
        let layers = pinned_layers();
        let mc = run_multicore_perf_cells(&layers[..1], Fidelity::Quick(16));
        assert_eq!(mc.len(), 3, "one cell per engine class");
        for cell in &mc {
            assert_eq!(cell.report.cores, MC_PERF_CORES);
            assert!(cell.report.cycles > 0);
        }
        let doc = perf_report("test", &[], &mc);
        let parsed = JsonValue::parse(&doc.to_string()).expect("valid JSON");
        assert_eq!(
            parsed
                .get("multicore_results")
                .and_then(JsonValue::as_array)
                .map(<[_]>::len),
            Some(3)
        );
        let rates: Vec<f64> = mc.iter().map(PerfCell::sim_insts_per_sec).collect();
        let expect = geomean(&rates).expect("three positive rates");
        let got = parsed
            .get("geomean_multicore_insts_per_sec")
            .and_then(JsonValue::as_f64)
            .expect("summary field present");
        assert!(((got - expect) / expect).abs() < 1e-9, "{got} vs {expect}");
        // The per-cell rows carry the core count, so single-core and
        // multi-core rows stay distinguishable in merged tooling.
        assert_eq!(
            parsed.get("multicore_results").unwrap().as_array().unwrap()[0]
                .get("cores")
                .and_then(JsonValue::as_u64),
            Some(MC_PERF_CORES as u64)
        );
    }

    #[test]
    fn min_multicore_ips_resolution_orders_flag_env_off() {
        assert_eq!(resolve_min_multicore_ips(None, None), Ok(None));
        assert_eq!(
            resolve_min_multicore_ips(None, Some("100000")),
            Ok(Some(100_000.0))
        );
        assert_eq!(
            resolve_min_multicore_ips(Some(5e4), Some("100000")),
            Ok(Some(5e4))
        );
        for bad in ["fast", "", "-1", "0", "NaN", "inf"] {
            let err = resolve_min_multicore_ips(None, Some(bad)).unwrap_err();
            assert!(err.contains(MIN_MC_IPS_ENV), "{err}");
        }
        for bad in [f64::NAN, f64::INFINITY, 0.0, -250_000.0] {
            let err = resolve_min_multicore_ips(Some(bad), None).unwrap_err();
            assert!(err.contains("--min-multicore-ips"), "{err}");
        }
    }

    #[test]
    fn perf_report_summary_survives_empty_cells() {
        let doc = perf_report("test", &[], &[]);
        assert_eq!(
            doc.get("geomean_sim_insts_per_sec")
                .and_then(JsonValue::as_f64),
            Some(0.0)
        );
        assert_eq!(
            doc.get("geomean_multicore_insts_per_sec")
                .and_then(JsonValue::as_f64),
            Some(0.0)
        );
    }
}
