//! Multi-core scaling of the §VI engine classes (the scale-out experiment
//! VEGETA's single-core evaluation implies).
//!
//! Default mode: shards the pinned perf-gate layer set (one Table IV layer
//! per source network) at 2:4 weights across 1–32 matrix-engine cores —
//! one engine per §VI engine class — through the `MultiCoreSim` pipeline,
//! prints the strong-scaling table (with per-cell host wall-clock next to
//! the simulated cycles), runs a static-vs-LPT scheduler duel on the
//! pinned BERT-L2 layer at 16 cores (dense and 2:4), and writes
//! `BENCH_scaling.json` (per-engine geomean speedups vs 1 core, per-cell
//! `wall_seconds`/`sim_insts_per_sec`, plus the duel cells) for the CI
//! artifact upload. Honours `VEGETA_QUICK` like every other figure binary.
//!
//! `--full-scale` (the scheduled full-scale workflow): replays one
//! full-fidelity Table IV layer sharded across 8 cores per engine class —
//! the network-scale exercise of the sharded streaming path.

use vegeta::json::JsonValue;
use vegeta::prelude::*;
use vegeta_bench::perf_gate::{perf_gate_engines, pinned_layers};
use vegeta_bench::scaling::{
    run_timed_scaling_sweep, scaling_core_counts, scaling_report, write_scaling_json,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--full-scale") => full_scale(),
        None => gate_mode(),
        Some(unknown) => {
            eprintln!("fig_scaling: unknown argument '{unknown}' (expected --full-scale)");
            std::process::exit(2);
        }
    }
}

fn gate_mode() {
    let fidelity = Fidelity::from_env();
    println!("## Multi-core scaling: pinned layers x engine classes x {fidelity} fidelity");
    let (report, walls) = run_timed_scaling_sweep(fidelity);
    let wall_of: std::collections::HashMap<(&str, &str, usize), f64> = report
        .cells
        .iter()
        .zip(&walls)
        .map(|(c, &w)| ((c.workload.as_str(), c.engine.as_str(), c.cores), w))
        .collect();

    println!(
        "{:<14} {:<22} {:>6} {:>12} {:>9} {:>11} {:>12} {:>8}",
        "layer", "engine", "cores", "cycles", "speedup", "efficiency", "L2 shared", "host s"
    );
    for workload in report.workloads() {
        for engine in report.engines() {
            let base = report
                .get_cores(workload, engine, "2:4", 1)
                .expect("1-core baseline cell");
            for &cores in &report.cores_values() {
                let cell = report
                    .get_cores(workload, engine, "2:4", cores)
                    .expect("cell computed");
                println!(
                    "{:<14} {:<22} {:>6} {:>12} {:>8.2}x {:>11.3} {:>12} {:>8.3}",
                    cell.workload,
                    cell.engine,
                    cell.cores,
                    cell.cycles,
                    base.cycles as f64 / cell.cycles as f64,
                    cell.scaling_efficiency,
                    cell.shared_l2.shared_hits,
                    wall_of[&(workload, engine, cores)]
                );
            }
        }
    }
    println!();
    for engine in report.engines() {
        for &cores in &scaling_core_counts()[1..] {
            if let Some(g) = report.geomean_core_scaling(engine, "2:4", cores) {
                println!("geomean speedup of {engine} at {cores} cores vs 1: {g:.2}x");
            }
        }
    }
    // Scheduler duel: the pinned BERT-L2 layer at 16 cores, dense and 2:4,
    // legacy static 1D sharding vs LPT-packed 2D/K-split plans — the
    // stranded-core story in one table.
    const DUEL_CORES: usize = 16;
    let bert = pinned_layers()
        .into_iter()
        .find(|l| l.name == "BERT-L2")
        .expect("pinned set includes BERT-L2");
    println!("\n## Scheduler duel: {} at {DUEL_CORES} cores", bert.name);
    let duel = Sweep::new()
        .with_engines(perf_gate_engines())
        .with_layer(bert)
        .with_sparsities([NmRatio::D4_4, NmRatio::S2_4])
        .with_fidelity(fidelity)
        .with_core_count(DUEL_CORES)
        .with_schedulers([SchedulerPolicy::Static, SchedulerPolicy::Lpt])
        .run();
    println!(
        "{:<22} {:>8} {:>9} {:>12} {:>11} {:>9}",
        "engine", "sparsity", "scheduler", "cycles", "efficiency", "stranded"
    );
    for cell in &duel.cells {
        println!(
            "{:<22} {:>8} {:>9} {:>12} {:>11.3} {:>9}",
            cell.engine,
            cell.sparsity,
            cell.scheduler,
            cell.cycles,
            cell.scaling_efficiency,
            cell.stranded_cores()
        );
    }

    report.save_csv("fig_scaling");
    let mut doc = scaling_report("gate", &report, &walls);
    if let JsonValue::Object(fields) = &mut doc {
        fields.push((
            "scheduler_duel".into(),
            JsonValue::Array(duel.cells.iter().map(RunReport::to_json_value).collect()),
        ));
    }
    write_scaling_json(&doc);
}

fn full_scale() {
    // One full-fidelity layer sharded across 8 cores per engine class: the
    // smallest pinned layer keeps the scheduled job's runtime bounded while
    // still replaying hundreds of thousands of sharded instructions.
    let layer = pinned_layers()
        .into_iter()
        .find(|l| l.name == "ResNet50-L6")
        .expect("pinned set includes ResNet50-L6");
    const CORES: usize = 8;
    println!(
        "## fig_scaling --full-scale: {} sharded across {CORES} cores",
        layer.name
    );
    let sweep = Sweep::new()
        .with_engines(perf_gate_engines())
        .with_layer(layer)
        .with_sparsity(NmRatio::S2_4)
        .with_fidelity(Fidelity::Full)
        .with_cores([1, CORES])
        .run();
    println!(
        "{:<22} {:>6} {:>14} {:>12} {:>9} {:>11}",
        "engine", "cores", "cycles", "insts", "speedup", "efficiency"
    );
    for engine in sweep.engines() {
        let one = sweep
            .get_cores(layer.name, engine, "2:4", 1)
            .expect("1-core cell");
        for &cores in &[1usize, CORES] {
            let cell = sweep
                .get_cores(layer.name, engine, "2:4", cores)
                .expect("cell computed");
            println!(
                "{:<22} {:>6} {:>14} {:>12} {:>8.2}x {:>11.3}",
                cell.engine,
                cell.cores,
                cell.cycles,
                cell.instructions,
                one.cycles as f64 / cell.cycles as f64,
                cell.scaling_efficiency
            );
        }
    }
    write_scaling_json(&scaling_report("full-scale", &sweep, &[]));
}
