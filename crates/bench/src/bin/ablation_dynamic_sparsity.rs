//! SS VII feasibility analysis: why SAVE-style register compaction does not
//! transfer from vector engines to tile engines.
//! Set `VEGETA_QUICK=1` for a scaled-down fast run.

fn main() {
    vegeta_bench::print_dynamic_sparsity();
}
