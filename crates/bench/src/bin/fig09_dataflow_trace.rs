//! Regenerates one artifact of the VEGETA evaluation; see vegeta-bench docs.
//! Set `VEGETA_QUICK=1` for a scaled-down fast run.

fn main() {
    vegeta_bench::print_fig09();
}
