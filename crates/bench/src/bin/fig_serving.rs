//! Batched inference serving over the simulated multi-core fleet (the
//! deployment experiment VEGETA's kernel-level evaluation implies).
//!
//! Default mode: serves a Poisson workload mix (one layer per source
//! network, perf-gate pinned) on fleets of 1–4 simulated workers per §VI
//! engine class, sweeping offered load from 4x under to 4x over each
//! engine's calibrated capacity, with request batching on and off. Prints
//! the latency/throughput table and the QPS-vs-workers saturation curves,
//! asserts the serving sanity floor (nothing shed at low load, achieved
//! tracks offered, batching beats singleton dispatch), and writes
//! `BENCH_serving.json` for the CI artifact upload. All times ride the
//! virtual clock, so output is deterministic; honours `VEGETA_QUICK` like
//! every other figure binary.
//!
//! `--full-scale` (the scheduled full-scale workflow): the same sweep at
//! full Table IV fidelity on the single-worker fleet.

use vegeta::prelude::*;
use vegeta_bench::serving::{
    check_serving_floor, run_serving_sweep, saturation_qps, serving_engines, serving_report,
    serving_worker_counts, write_serving_json, ServingCell, LOAD_FACTORS,
};

/// Requests per sweep cell: enough arrivals that the fixed batching-window
/// tail amortizes against the arrival span at every grid point (so achieved
/// QPS tracks offered at low load) while each discrete-event replay stays
/// trivial — distinct simulations are memoized across cells.
const REQUESTS: usize = 512;

/// The load generator seed the committed curves are pinned to.
const SEED: u64 = 23;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--full-scale") => run("full-scale", Fidelity::Full, &[1], REQUESTS / 2),
        None => run(
            "gate",
            Fidelity::from_env(),
            &serving_worker_counts(true),
            REQUESTS,
        ),
        Some(unknown) => {
            eprintln!("fig_serving: unknown argument '{unknown}' (expected --full-scale)");
            std::process::exit(2);
        }
    }
}

fn run(mode: &str, fidelity: Fidelity, worker_counts: &[usize], requests: usize) {
    println!(
        "## Serving sweep: engine classes x {} workers x {:?} load factors, \
         {requests} requests/cell, {fidelity} fidelity",
        worker_counts.len(),
        LOAD_FACTORS
    );
    let mut runs: Vec<(String, Vec<ServingCell>)> = Vec::new();
    for engine in serving_engines() {
        let cells = run_serving_sweep(&engine, fidelity, worker_counts, requests, SEED);
        print_cells(engine.name(), &cells);
        for &workers in worker_counts {
            println!(
                "{} saturation at {workers} worker(s): batched {:.0} QPS, singleton {:.0} QPS",
                engine.name(),
                saturation_qps(&cells, workers, true),
                saturation_qps(&cells, workers, false)
            );
        }
        if let Err(why) = check_serving_floor(engine.name(), &cells) {
            eprintln!("fig_serving: serving floor violated: {why}");
            std::process::exit(1);
        }
        runs.push((engine.name().to_string(), cells));
    }
    println!("\nserving floor: ok (all engines)");
    write_serving_json(&serving_report(mode, &runs));
}

fn print_cells(engine: &str, cells: &[ServingCell]) {
    println!("\n### {engine}");
    println!(
        "{:<8} {:>7} {:>9} {:>10} {:>10} {:>8} {:>8} {:>8} {:>6} {:>8} {:>6}",
        "workers",
        "factor",
        "batched",
        "offered",
        "achieved",
        "p50us",
        "p95us",
        "p99us",
        "shed",
        "batches",
        "util"
    );
    for cell in cells {
        let r = &cell.report;
        println!(
            "{:<8} {:>7.2} {:>9} {:>10.0} {:>10.0} {:>8} {:>8} {:>8} {:>6} {:>8} {:>5.0}%",
            r.workers,
            cell.load_factor,
            if cell.batched { "yes" } else { "no" },
            r.offered_qps,
            r.achieved_qps,
            r.p50_latency_us,
            r.p95_latency_us,
            r.p99_latency_us,
            r.shed,
            r.batches,
            r.mean_utilization() * 100.0
        );
    }
}
