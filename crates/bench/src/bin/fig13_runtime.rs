//! Regenerates the Fig. 13 grid (12 layers × 10 engines × 3 sparsities)
//! through the parallel `Sweep` runner; see vegeta-bench docs.
//! Set `VEGETA_QUICK=1` for a scaled-down fast run. Also emits
//! `BENCH_fig13.json` (per-engine geomean speedups vs RASA-DM) and, when
//! `VEGETA_CSV_DIR` is set, `fig13_runtime.csv`.

fn main() {
    vegeta_bench::print_fig13();
}
