//! Statically verifies every instruction stream the evaluation replays —
//! the deduped Fig. 13 kernel grid plus the multi-core shard
//! decompositions — and exits nonzero on any diagnostic. With
//! `--self-test`, runs the mutation corpus instead and exits nonzero
//! unless every seeded defect is rejected with its expected code. With
//! `--replay`, replays each verified cell through the production
//! (event-driven) simulator and exits nonzero unless the instruction
//! counts the simulator consumes match the op counts the verifier walked.
//! Set `VEGETA_QUICK=1` for a scaled-down fast run.

fn main() {
    let self_test = std::env::args().any(|a| a == "--self-test");
    let replay = std::env::args().any(|a| a == "--replay");
    let ok = if self_test {
        vegeta_bench::run_self_test()
    } else if replay {
        vegeta_bench::print_replay_check()
    } else {
        vegeta_bench::print_lint_sweep()
    };
    if !ok {
        std::process::exit(1);
    }
}
