//! Statically verifies every instruction stream the evaluation replays —
//! the deduped Fig. 13 kernel grid plus the multi-core shard
//! decompositions — and exits nonzero on any diagnostic. With
//! `--self-test`, runs the mutation corpus instead and exits nonzero
//! unless every seeded defect is rejected with its expected code.
//! Set `VEGETA_QUICK=1` for a scaled-down fast run.

fn main() {
    let self_test = std::env::args().any(|a| a == "--self-test");
    let ok = if self_test {
        vegeta_bench::run_self_test()
    } else {
        vegeta_bench::print_lint_sweep()
    };
    if !ok {
        std::process::exit(1);
    }
}
