//! The CI performance gate.
//!
//! Default mode (the PR `perf-gate` job):
//!
//! 1. regenerates the Fig. 13 quick-mode sweep and diffs its per-engine
//!    geomean speedups against the committed `BENCH_fig13.json` within
//!    ±2%, exiting non-zero on any drift (performance changes must update
//!    the baseline in the same PR);
//! 2. checks the strong-scaling floor: the pinned layers sharded across
//!    8 cores (2D/K-split shard plans, LPT scheduling) must sustain an
//!    across-engine geomean speedup of at least the floor (default 3.5×)
//!    with no stranded cores — catching any regression back toward the
//!    ~2.2× plateau the 1D/static path hit;
//! 3. replays the pinned layer set at **both** fidelities (quick/4 and
//!    full) through the streaming pipeline, plus the same layers sharded
//!    across 8 simulated cores through the host-parallel multi-core
//!    replay, and writes the timed `BENCH_perf.json` artifact (simulated
//!    insts/sec, wall-clock, cycles, peak resident bytes, and the
//!    single-core / multi-core throughput geomeans).
//!
//! `--full-scale` (the scheduled job): skips the baseline diff and replays
//! one full-fidelity Table IV layer per engine class — including the
//! largest GPT-3 layer — exercising the streaming path at network scale.
//!
//! Flags: `--baseline <path>` overrides the committed baseline,
//! `--tolerance <fraction>` the ±2% default (the `VEGETA_PERF_TOL`
//! environment variable also overrides the default; the flag wins over
//! both), `--scaling-floor <speedup>` the 3.5× scaling floor,
//! `--min-insts-per-sec <rate>` the opt-in replay-throughput floor on
//! the cells' `geomean_sim_insts_per_sec` (the `VEGETA_PERF_MIN_IPS`
//! environment variable also enables it; unset means off, because
//! wall-clock floors are host-dependent), and `--min-multicore-ips
//! <rate>` the analogous opt-in floor on
//! `geomean_multicore_insts_per_sec` (`VEGETA_PERF_MIN_MC_IPS`).

use vegeta::json::JsonValue;
use vegeta::prelude::*;
use vegeta_bench::perf_gate::{
    check_throughput_floor, compare_geomeans, perf_report, pinned_layers, resolve_min_ips,
    resolve_min_multicore_ips, resolve_tolerance, run_multicore_perf_cells, run_perf_cells,
    write_perf_json, MC_PERF_CORES, MIN_IPS_ENV, MIN_MC_IPS_ENV, TOLERANCE_ENV,
};
use vegeta_bench::scaling::{
    check_scaling_floor, run_scaling_floor_sweep, DEFAULT_SCALING_FLOOR, SCALING_FLOOR_CORES,
};

fn workspace_baseline() -> std::path::PathBuf {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    if std::path::Path::new(root).is_dir() {
        std::path::Path::new(root).join("BENCH_fig13.json")
    } else {
        std::path::PathBuf::from("BENCH_fig13.json")
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut full_scale = false;
    let mut baseline_path = workspace_baseline();
    let mut tolerance_flag: Option<f64> = None;
    let mut min_ips_flag: Option<f64> = None;
    let mut min_mc_ips_flag: Option<f64> = None;
    let mut scaling_floor = DEFAULT_SCALING_FLOOR;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--full-scale" => full_scale = true,
            "--baseline" => {
                baseline_path = iter.next().expect("--baseline needs a path").into();
            }
            "--tolerance" => {
                let raw = iter.next().expect("--tolerance needs a fraction");
                tolerance_flag = Some(raw.parse().unwrap_or_else(|_| {
                    eprintln!("perf_gate: --tolerance '{raw}' is not a number (e.g. 0.02)");
                    std::process::exit(2);
                }));
            }
            "--min-insts-per-sec" => {
                let raw = iter.next().expect("--min-insts-per-sec needs a rate");
                min_ips_flag = Some(raw.parse().unwrap_or_else(|_| {
                    eprintln!(
                        "perf_gate: --min-insts-per-sec '{raw}' is not a number (e.g. 250000)"
                    );
                    std::process::exit(2);
                }));
            }
            "--min-multicore-ips" => {
                let raw = iter.next().expect("--min-multicore-ips needs a rate");
                min_mc_ips_flag = Some(raw.parse().unwrap_or_else(|_| {
                    eprintln!(
                        "perf_gate: --min-multicore-ips '{raw}' is not a number (e.g. 250000)"
                    );
                    std::process::exit(2);
                }));
            }
            "--scaling-floor" => {
                let raw = iter.next().expect("--scaling-floor needs a speedup");
                scaling_floor = raw.parse().unwrap_or_else(|_| {
                    eprintln!("perf_gate: --scaling-floor '{raw}' is not a number (e.g. 3.5)");
                    std::process::exit(2);
                });
            }
            // A gate that silently ignores a mistyped flag would run with
            // criteria the author did not intend; refuse instead.
            unknown => {
                eprintln!(
                    "perf_gate: unknown argument '{unknown}' (expected --full-scale, \
                     --baseline <path>, --tolerance <fraction>, \
                     --min-insts-per-sec <rate>, --min-multicore-ips <rate>, \
                     --scaling-floor <speedup>)"
                );
                std::process::exit(2);
            }
        }
    }
    // Flag > VEGETA_PERF_TOL > the ±2% default.
    let env_tolerance = std::env::var(TOLERANCE_ENV).ok();
    let tolerance =
        resolve_tolerance(tolerance_flag, env_tolerance.as_deref()).unwrap_or_else(|e| {
            eprintln!("perf_gate: {e}");
            std::process::exit(2);
        });
    // Flag > VEGETA_PERF_MIN_IPS > off.
    let env_min_ips = std::env::var(MIN_IPS_ENV).ok();
    let min_ips = resolve_min_ips(min_ips_flag, env_min_ips.as_deref()).unwrap_or_else(|e| {
        eprintln!("perf_gate: {e}");
        std::process::exit(2);
    });
    // Flag > VEGETA_PERF_MIN_MC_IPS > off.
    let env_min_mc_ips = std::env::var(MIN_MC_IPS_ENV).ok();
    let min_mc_ips = resolve_min_multicore_ips(min_mc_ips_flag, env_min_mc_ips.as_deref())
        .unwrap_or_else(|e| {
            eprintln!("perf_gate: {e}");
            std::process::exit(2);
        });

    if full_scale {
        // One full-fidelity layer per engine class, including the largest
        // GPT-3 layer: the network-scale streaming exercise.
        let layers: Vec<Layer> = table4()
            .into_iter()
            .filter(|l| matches!(l.name, "ResNet50-L6" | "BERT-L2" | "GPT-L3"))
            .collect();
        println!("## perf_gate --full-scale: full-fidelity streamed replays");
        let cells = run_perf_cells(&layers, &[Fidelity::Full]);
        print_cells(&cells);
        write_perf_json(&perf_report("full-scale", &cells, &[]));
        gate_throughput("throughput floor", &cells, min_ips, MIN_IPS_ENV);
        return;
    }

    // --- 1. Regression gate against the committed quick-mode baseline. ---
    println!(
        "## perf_gate: Fig. 13 geomean gate (tolerance ±{:.1}%)",
        tolerance * 100.0
    );
    let baseline_text = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        eprintln!("cannot read baseline {}: {e}", baseline_path.display());
        std::process::exit(1);
    });
    let baseline = JsonValue::parse(&baseline_text).unwrap_or_else(|e| {
        eprintln!(
            "baseline {} is not valid JSON: {e}",
            baseline_path.display()
        );
        std::process::exit(1);
    });
    // The committed baseline is the quick/4 artifact; regenerate at the
    // same fidelity regardless of the environment.
    let report = Sweep::figure13().with_scale(4).run();
    let tmp = std::env::temp_dir().join(format!("vegeta_perf_gate_{}", std::process::id()));
    let fresh_path =
        vegeta_bench::write_fig13_json_to(&report, 4, &tmp).expect("fresh geomeans written");
    let fresh = JsonValue::parse(&std::fs::read_to_string(&fresh_path).expect("readable"))
        .expect("fresh geomeans are valid JSON");
    std::fs::remove_dir_all(&tmp).ok();
    // When an artifact directory is configured, publish the sweep this
    // gate just computed (CSV + geomean JSON) instead of making CI rerun
    // the whole grid through fig13_runtime a second time. Without
    // VEGETA_CSV_DIR nothing is written — the committed workspace
    // baseline must stay untouched.
    if std::env::var("VEGETA_CSV_DIR").is_ok_and(|d| !d.is_empty()) {
        report.save_csv("fig13_runtime");
        vegeta_bench::write_fig13_json(&report, 4);
    }
    match compare_geomeans(&baseline, &fresh, tolerance) {
        Ok(compared) => {
            println!(
                "geomean gate PASSED: {compared} geomeans within ±{:.1}%",
                tolerance * 100.0
            );
        }
        Err(failures) => {
            eprintln!("geomean gate FAILED ({} drifts):", failures.len());
            for f in &failures {
                eprintln!("  {f}");
            }
            eprintln!(
                "if this change is intentional, regenerate the baseline with \
                 `VEGETA_QUICK=1 cargo run --release -p vegeta-bench --bin fig13_runtime` \
                 and commit BENCH_fig13.json"
            );
            std::process::exit(1);
        }
    }

    // --- 2. Strong-scaling floor at the pinned core count. ---
    println!(
        "\n## perf_gate: {SCALING_FLOOR_CORES}-core scaling floor (>= {scaling_floor:.2}x geomean)"
    );
    let scaling = run_scaling_floor_sweep(Fidelity::from_env());
    match check_scaling_floor(&scaling, SCALING_FLOOR_CORES, scaling_floor) {
        Ok(achieved) => println!(
            "scaling floor PASSED: {achieved:.2}x geomean speedup at \
             {SCALING_FLOOR_CORES} cores, no stranded cores"
        ),
        Err(why) => {
            eprintln!("scaling floor FAILED: {why}");
            std::process::exit(1);
        }
    }

    // --- 3. Pinned perf set at both fidelities, timed. ---
    println!("\n## perf_gate: pinned layer set at quick/4 and full fidelity");
    let cells = run_perf_cells(&pinned_layers(), &[Fidelity::Quick(4), Fidelity::Full]);
    print_cells(&cells);

    // --- 4. The same layers sharded across 8 cores, host-parallel. ---
    println!("\n## perf_gate: pinned layer set sharded across {MC_PERF_CORES} cores, timed");
    let mc_cells = run_multicore_perf_cells(&pinned_layers(), Fidelity::Full);
    print_cells(&mc_cells);

    write_perf_json(&perf_report("gate", &cells, &mc_cells));
    gate_throughput("throughput floor", &cells, min_ips, MIN_IPS_ENV);
    gate_throughput(
        "multicore throughput floor",
        &mc_cells,
        min_mc_ips,
        MIN_MC_IPS_ENV,
    );
}

/// Applies one opt-in replay-throughput floor to a set of timed cells; a
/// floor of `None` (neither flag nor environment set) reports and moves
/// on.
fn gate_throughput(
    label: &str,
    cells: &[vegeta_bench::perf_gate::PerfCell],
    min_ips: Option<f64>,
    env_name: &str,
) {
    let Some(floor) = min_ips else {
        println!("\n{label}: off (set {env_name} or the matching flag)");
        return;
    };
    match check_throughput_floor(cells, floor) {
        Ok(achieved) => {
            println!("\n{label} PASSED: geomean {achieved:.0} sim insts/sec >= {floor:.0}");
        }
        Err(why) => {
            eprintln!("\n{label} FAILED: {why}");
            std::process::exit(1);
        }
    }
}

fn print_cells(cells: &[vegeta_bench::perf_gate::PerfCell]) {
    println!(
        "{:<14} {:<22} {:>8} {:>12} {:>12} {:>14} {:>12}",
        "layer", "engine", "fidelity", "cycles", "insts", "sim insts/s", "peak bytes"
    );
    for cell in cells {
        println!(
            "{:<14} {:<22} {:>8} {:>12} {:>12} {:>14.0} {:>12}",
            cell.report.workload,
            cell.report.engine,
            cell.report.fidelity,
            cell.report.cycles,
            cell.report.instructions,
            cell.sim_insts_per_sec(),
            cell.report.peak_resident_bytes
        );
    }
}
