//! Multi-core scaling benchmark behind the `fig_scaling` binary.
//!
//! VEGETA's evaluation is single-core; this module answers the scale-out
//! question its deployment story implies — "how does each engine class
//! scale when one Table IV layer is sharded across 2–32 matrix-engine
//! cores?" — the way SparseZipper evaluates its matrix extensions. It
//! drives the `Sweep::with_cores` axis over the pinned perf-gate layer set
//! and one engine per §VI engine class, derives per-engine geometric-mean
//! speedups vs the 1-core cells, and emits the machine-readable
//! `BENCH_scaling.json` artifact the CI drivers job uploads (cycle counts
//! are simulated, so quick-mode output is deterministic).
//!
//! [`check_scaling_floor`] is the perf gate's guard against scaling
//! regressions: with 2D/K-split shard plans and LPT packing the pinned
//! set sustains well over [`DEFAULT_SCALING_FLOOR`]× geomean speedup at
//! [`SCALING_FLOOR_CORES`] cores (the old 1D/static path plateaued around
//! 2.2× with half the cores stranded).

use vegeta::json::JsonValue;
use vegeta::prelude::*;

use crate::perf_gate::{perf_gate_engines, pinned_layers};

/// The strong-scaling core counts the benchmark sweeps (1 is the
/// baseline the speedups are normalized to).
pub fn scaling_core_counts() -> Vec<usize> {
    vec![1, 2, 4, 8, 16, 32]
}

/// Core count the perf gate's scaling floor is pinned at.
pub const SCALING_FLOOR_CORES: usize = 8;

/// Minimum across-engine geomean speedup at [`SCALING_FLOOR_CORES`] cores
/// the perf gate accepts (override per run with `--scaling-floor`). The
/// LPT-scheduled 2D shard plans deliver well above this; the floor exists
/// to catch a regression back toward the ~2.2× 1D/static plateau.
pub const DEFAULT_SCALING_FLOOR: f64 = 3.5;

/// Runs the small sweep behind the perf gate's scaling floor: pinned
/// layers × engine classes × 2:4 × {1, [`SCALING_FLOOR_CORES`]} cores.
pub fn run_scaling_floor_sweep(fidelity: Fidelity) -> SweepReport {
    Sweep::new()
        .with_engines(perf_gate_engines())
        .with_layers(pinned_layers())
        .with_sparsity(NmRatio::S2_4)
        .with_fidelity(fidelity)
        .with_cores([1, SCALING_FLOOR_CORES])
        .run()
}

/// Checks the strong-scaling floor on a cores-axis sweep: every engine's
/// geomean speedup at `cores` cores is folded into one across-engine
/// geomean, which must reach `floor`; any `cores`-core cell with stranded
/// (zero-cycle) cores fails outright. Returns the achieved geomean.
///
/// # Errors
///
/// A human-readable description of the shortfall: a missing baseline or
/// `cores`-core cell, a stranded core, or a geomean below the floor.
pub fn check_scaling_floor(report: &SweepReport, cores: usize, floor: f64) -> Result<f64, String> {
    for cell in report.cells.iter().filter(|c| c.cores == cores) {
        if cell.stranded_cores() > 0 {
            return Err(format!(
                "{} on {} strands {} of {} cores",
                cell.workload,
                cell.engine,
                cell.stranded_cores(),
                cell.cores
            ));
        }
    }
    let mut per_engine = Vec::new();
    for engine in report.engines() {
        let g = report
            .geomean_core_scaling(engine, "2:4", cores)
            .ok_or_else(|| format!("{engine} is missing 1- or {cores}-core cells"))?;
        per_engine.push(g);
    }
    let achieved =
        geomean(&per_engine).ok_or_else(|| "no engines in the scaling sweep".to_string())?;
    if achieved < floor {
        return Err(format!(
            "strong-scaling geomean at {cores} cores is {achieved:.2}x, below the {floor:.2}x floor"
        ));
    }
    Ok(achieved)
}

/// Runs the scaling grid: pinned layers × one engine per §VI engine class
/// × 2:4 weights × [`scaling_core_counts`], at the given fidelity, through
/// the sharded [`MultiCoreSim`] pipeline.
pub fn run_scaling_sweep(fidelity: Fidelity) -> SweepReport {
    Sweep::new()
        .with_engines(perf_gate_engines())
        .with_layers(pinned_layers())
        .with_sparsity(NmRatio::S2_4)
        .with_fidelity(fidelity)
        .with_cores(scaling_core_counts())
        .run()
}

/// Runs the same grid as [`run_scaling_sweep`] cell by cell in the sweep's
/// deterministic order (layer-major, then core count, then engine), timing
/// each sharded replay on the host clock. Returns the assembled
/// [`SweepReport`] plus one wall-clock-seconds entry per cell, index-
/// aligned with `report.cells` — the per-cell host cost `BENCH_scaling.json`
/// publishes next to the simulated cycles. One shared trace cache
/// amortizes generation exactly as the pooled sweep does.
pub fn run_timed_scaling_sweep(fidelity: Fidelity) -> (SweepReport, Vec<f64>) {
    let cache = TraceCache::shared();
    let mut cells = Vec::new();
    let mut walls = Vec::new();
    for layer in pinned_layers() {
        for &cores in &scaling_core_counts() {
            for engine in perf_gate_engines() {
                let session = Session::new(engine).with_cache(std::sync::Arc::clone(&cache));
                let start = std::time::Instant::now();
                cells.push(session.run_layer_cores_at(&layer, NmRatio::S2_4, fidelity, cores));
                walls.push(start.elapsed().as_secs_f64());
            }
        }
    }
    let report = SweepReport {
        cells,
        traces_built: cache.misses(),
        trace_cache_hits: cache.hits(),
        cache: cache.stats(),
        threads: 1,
    };
    (report, walls)
}

/// Wraps a cores-axis sweep into the `BENCH_scaling.json` document:
/// per-engine geomean speedups vs 1 core (the numbers a perf gate can
/// watch), mean parallel efficiency and shared-L2 reuse per core count,
/// plus every raw cell.
///
/// `walls` is index-aligned per-cell host wall-clock seconds (from
/// [`run_timed_scaling_sweep`]); when non-empty it must have one entry
/// per cell, and each cell row gains `wall_seconds` and
/// `sim_insts_per_sec` columns next to its simulated cycles. Pass `&[]`
/// for an untimed (pooled) sweep.
///
/// # Panics
///
/// If `walls` is non-empty but not index-aligned with `report.cells`.
pub fn scaling_report(mode: &str, report: &SweepReport, walls: &[f64]) -> JsonValue {
    assert!(
        walls.is_empty() || walls.len() == report.cells.len(),
        "walls must align with cells: {} vs {}",
        walls.len(),
        report.cells.len()
    );
    let cell_json = |(i, cell): (usize, &RunReport)| {
        let mut value = cell.to_json_value();
        if let (JsonValue::Object(fields), Some(&wall)) = (&mut value, walls.get(i)) {
            fields.push(("wall_seconds".into(), wall.into()));
            let rate = if wall > 0.0 {
                cell.instructions as f64 / wall
            } else {
                0.0
            };
            fields.push(("sim_insts_per_sec".into(), rate.into()));
        }
        value
    };
    let sparsity = "2:4";
    let mut per_engine = Vec::new();
    for engine in report.engines() {
        let mut per_cores = Vec::new();
        for &cores in &report.cores_values() {
            if let Some(g) = report.geomean_core_scaling(engine, sparsity, cores) {
                per_cores.push((cores.to_string(), JsonValue::from(g)));
            }
        }
        per_engine.push((engine.to_string(), JsonValue::Object(per_cores)));
    }
    JsonValue::Object(vec![
        ("report".into(), "fig_scaling".into()),
        ("mode".into(), mode.into()),
        ("sparsity".into(), sparsity.into()),
        (
            "cores".into(),
            JsonValue::Array(
                report
                    .cores_values()
                    .iter()
                    .map(|&c| JsonValue::from(c))
                    .collect(),
            ),
        ),
        (
            "geomean_speedup_vs_1core".into(),
            JsonValue::Object(per_engine),
        ),
        (
            "cells".into(),
            JsonValue::Array(report.cells.iter().enumerate().map(cell_json).collect()),
        ),
    ])
}

/// Writes `BENCH_scaling.json` into `$VEGETA_CSV_DIR` (when set) or the
/// workspace root; returns the path on success. The file is a CI artifact
/// (gitignored), not a committed baseline — scaling numbers move whenever
/// the core model does, and the perf gate already pins absolute cycles.
pub fn write_scaling_json(doc: &JsonValue) -> Option<std::path::PathBuf> {
    crate::write_artifact_json("BENCH_scaling.json", doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_sweep_is_monotone_and_serializes() {
        // One small layer at deep quick scale keeps the unit test fast; the
        // drivers job runs the full pinned set.
        let report = Sweep::new()
            .with_engine(EngineConfig::vegeta_s(16).unwrap())
            .with_layer(table4()[7])
            .with_sparsity(NmRatio::S2_4)
            .with_fidelity(Fidelity::Quick(4))
            .with_cores([1, 2, 4])
            .run();
        assert_eq!(report.cells.len(), 3);
        let mut last = u64::MAX;
        for cell in &report.cells {
            assert!(cell.cycles <= last, "monotone non-increasing cycles");
            last = cell.cycles;
        }
        let doc = scaling_report("test", &report, &[]);
        let parsed = JsonValue::parse(&doc.to_string()).expect("valid JSON");
        let speedups = parsed
            .get("geomean_speedup_vs_1core")
            .and_then(|e| e.get("VEGETA-S-16-2"))
            .expect("engine entry");
        let at4 = speedups
            .get("4")
            .and_then(JsonValue::as_f64)
            .expect("4-core");
        assert!(at4 > 1.0, "4 cores must beat 1: {at4}");
        assert!(
            speedups.get("1").and_then(JsonValue::as_f64).unwrap() > 0.999,
            "the baseline's speedup over itself is 1"
        );
        // Untimed cells have no wall-clock columns.
        let first = &parsed.get("cells").unwrap().as_array().unwrap()[0];
        assert!(first.get("wall_seconds").is_none());
    }

    #[test]
    fn timed_cells_carry_wall_clock_next_to_cycles() {
        let report = Sweep::new()
            .with_engine(EngineConfig::vegeta_s(16).unwrap())
            .with_layer(table4()[7])
            .with_sparsity(NmRatio::S2_4)
            .with_fidelity(Fidelity::Quick(8))
            .with_cores([1, 2])
            .run();
        let walls = vec![0.5; report.cells.len()];
        let doc = scaling_report("test", &report, &walls);
        let parsed = JsonValue::parse(&doc.to_string()).expect("valid JSON");
        for cell in parsed.get("cells").unwrap().as_array().unwrap() {
            assert_eq!(
                cell.get("wall_seconds").and_then(JsonValue::as_f64),
                Some(0.5)
            );
            let insts = cell
                .get("instructions")
                .and_then(JsonValue::as_f64)
                .unwrap();
            let rate = cell
                .get("sim_insts_per_sec")
                .and_then(JsonValue::as_f64)
                .unwrap();
            assert!((rate - insts / 0.5).abs() < 1e-6, "{rate} vs {insts}/0.5");
        }
    }

    #[test]
    fn timed_sweep_matches_the_pooled_grid_shape() {
        // The timed runner must enumerate the same grid in the same order
        // the pooled sweep reports, or walls stop being index-aligned.
        let pooled = run_scaling_floor_sweep(Fidelity::Quick(2));
        let labels: Vec<(String, String, usize)> = pooled
            .cells
            .iter()
            .map(|c| (c.workload.clone(), c.engine.clone(), c.cores))
            .collect();
        let mut expect = Vec::new();
        for layer in pinned_layers() {
            for cores in [1, SCALING_FLOOR_CORES] {
                for engine in perf_gate_engines() {
                    expect.push((layer.name.to_string(), engine.name().to_string(), cores));
                }
            }
        }
        assert_eq!(labels, expect, "grid order is layer, cores, engine");
    }

    #[test]
    fn scaling_core_counts_start_at_the_baseline() {
        let counts = scaling_core_counts();
        assert_eq!(counts[0], 1, "speedups are normalized to 1 core");
        assert!(counts.windows(2).all(|w| w[0] < w[1]));
        assert!(
            counts.contains(&SCALING_FLOOR_CORES),
            "the floor's core count is part of the published curve"
        );
    }

    #[test]
    fn scaling_floor_passes_and_fails_sensibly() {
        let report = Sweep::new()
            .with_engine(EngineConfig::vegeta_s(16).unwrap())
            .with_layer(table4()[7])
            .with_sparsity(NmRatio::S2_4)
            .with_fidelity(Fidelity::Quick(4))
            .with_cores([1, 8])
            .run();
        let achieved = check_scaling_floor(&report, 8, 2.0).expect("8 cores beat 2x");
        assert!(achieved > 2.0);
        let err = check_scaling_floor(&report, 8, 1000.0).unwrap_err();
        assert!(
            err.contains("below the"),
            "floor failure names itself: {err}"
        );
        let err = check_scaling_floor(&report, 16, 2.0).unwrap_err();
        assert!(
            err.contains("missing"),
            "absent core count is refused: {err}"
        );
    }
}
