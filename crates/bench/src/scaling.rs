//! Multi-core scaling benchmark behind the `fig_scaling` binary.
//!
//! VEGETA's evaluation is single-core; this module answers the scale-out
//! question its deployment story implies — "how does each engine class
//! scale when one Table IV layer is sharded across 2/4/8 matrix-engine
//! cores?" — the way SparseZipper evaluates its matrix extensions. It
//! drives the `Sweep::with_cores` axis over the pinned perf-gate layer set
//! and one engine per §VI engine class, derives per-engine geometric-mean
//! speedups vs the 1-core cells, and emits the machine-readable
//! `BENCH_scaling.json` artifact the CI drivers job uploads (cycle counts
//! are simulated, so quick-mode output is deterministic).

use vegeta::json::JsonValue;
use vegeta::prelude::*;

use crate::perf_gate::{perf_gate_engines, pinned_layers};

/// The strong-scaling core counts the benchmark sweeps (1 is the
/// baseline the speedups are normalized to).
pub fn scaling_core_counts() -> Vec<usize> {
    vec![1, 2, 4, 8]
}

/// Runs the scaling grid: pinned layers × one engine per §VI engine class
/// × 2:4 weights × [`scaling_core_counts`], at the given fidelity, through
/// the sharded [`MultiCoreSim`] pipeline.
pub fn run_scaling_sweep(fidelity: Fidelity) -> SweepReport {
    Sweep::new()
        .with_engines(perf_gate_engines())
        .with_layers(pinned_layers())
        .with_sparsity(NmRatio::S2_4)
        .with_fidelity(fidelity)
        .with_cores(scaling_core_counts())
        .run()
}

/// Wraps a cores-axis sweep into the `BENCH_scaling.json` document:
/// per-engine geomean speedups vs 1 core (the numbers a perf gate can
/// watch), mean parallel efficiency and shared-L2 reuse per core count,
/// plus every raw cell.
pub fn scaling_report(mode: &str, report: &SweepReport) -> JsonValue {
    let sparsity = "2:4";
    let mut per_engine = Vec::new();
    for engine in report.engines() {
        let mut per_cores = Vec::new();
        for &cores in &report.cores_values() {
            if let Some(g) = report.geomean_core_scaling(engine, sparsity, cores) {
                per_cores.push((cores.to_string(), JsonValue::from(g)));
            }
        }
        per_engine.push((engine.to_string(), JsonValue::Object(per_cores)));
    }
    JsonValue::Object(vec![
        ("report".into(), "fig_scaling".into()),
        ("mode".into(), mode.into()),
        ("sparsity".into(), sparsity.into()),
        (
            "cores".into(),
            JsonValue::Array(
                report
                    .cores_values()
                    .iter()
                    .map(|&c| JsonValue::from(c))
                    .collect(),
            ),
        ),
        (
            "geomean_speedup_vs_1core".into(),
            JsonValue::Object(per_engine),
        ),
        (
            "cells".into(),
            JsonValue::Array(report.cells.iter().map(RunReport::to_json_value).collect()),
        ),
    ])
}

/// Writes `BENCH_scaling.json` into `$VEGETA_CSV_DIR` (when set) or the
/// workspace root; returns the path on success. The file is a CI artifact
/// (gitignored), not a committed baseline — scaling numbers move whenever
/// the core model does, and the perf gate already pins absolute cycles.
pub fn write_scaling_json(doc: &JsonValue) -> Option<std::path::PathBuf> {
    crate::write_artifact_json("BENCH_scaling.json", doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_sweep_is_monotone_and_serializes() {
        // One small layer at deep quick scale keeps the unit test fast; the
        // drivers job runs the full pinned set.
        let report = Sweep::new()
            .with_engine(EngineConfig::vegeta_s(16).unwrap())
            .with_layer(table4()[7])
            .with_sparsity(NmRatio::S2_4)
            .with_fidelity(Fidelity::Quick(4))
            .with_cores([1, 2, 4])
            .run();
        assert_eq!(report.cells.len(), 3);
        let mut last = u64::MAX;
        for cell in &report.cells {
            assert!(cell.cycles <= last, "monotone non-increasing cycles");
            last = cell.cycles;
        }
        let doc = scaling_report("test", &report);
        let parsed = JsonValue::parse(&doc.to_string()).expect("valid JSON");
        let speedups = parsed
            .get("geomean_speedup_vs_1core")
            .and_then(|e| e.get("VEGETA-S-16-2"))
            .expect("engine entry");
        let at4 = speedups
            .get("4")
            .and_then(JsonValue::as_f64)
            .expect("4-core");
        assert!(at4 > 1.0, "4 cores must beat 1: {at4}");
        assert!(
            speedups.get("1").and_then(JsonValue::as_f64).unwrap() > 0.999,
            "the baseline's speedup over itself is 1"
        );
    }

    #[test]
    fn scaling_core_counts_start_at_the_baseline() {
        let counts = scaling_core_counts();
        assert_eq!(counts[0], 1, "speedups are normalized to 1 core");
        assert!(counts.windows(2).all(|w| w[0] < w[1]));
    }
}
