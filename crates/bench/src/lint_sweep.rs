//! The `vegeta_lint` binary's sweep: statically verify every kernel
//! stream the Fig. 13 evaluation replays, plus the multi-core shard
//! decompositions behind the scaling experiments — before (and without)
//! simulating any of them.
//!
//! Two halves, mirroring the verifier's two obligations:
//!
//! * **Acceptance sweep** ([`run_lint_sweep`]) — collects every distinct
//!   `(shape, kernel)` cell of the Fig. 13 grid (ten engines × twelve
//!   Table IV layers × three sparsities, deduped through the same
//!   [`EngineKernelExt::kernel_spec`] selection the sweep runner uses),
//!   widens it with the kernel families Fig. 13 does not exercise
//!   (row-wise §V-E, Listing 1, the vector fallback), and verifies each
//!   cell unsharded plus across the strong-scaling core counts — both the
//!   LPT 2D/K-split shard sets and the legacy 1D static split. Any
//!   diagnostic is a failure.
//! * **Rejection self-test** ([`run_self_test`]) — replays the mutation
//!   corpus ([`vegeta::lint::run_corpus`]): one seeded defect per
//!   operator, each of which must be rejected with its expected
//!   diagnostic code. A verifier that accepts everything is worthless;
//!   this half proves the sweep's green is meaningful.
//!
//! Honors `VEGETA_QUICK=1` like every other driver.

use std::collections::HashSet;

use vegeta::lint::{verify_shard_set, verify_shard_streams, verify_spec, Report};
use vegeta::prelude::*;

/// Core counts the shard-plan sweep verifies (the strong-scaling axis of
/// the scaling experiments).
pub const LINT_SWEEP_CORES: [usize; 4] = [2, 4, 8, 16];

/// One verified cell of the sweep: its label, the number of streams and
/// ops walked, and any diagnostics found.
#[derive(Debug)]
pub struct LintCell {
    /// `workload/kernel@sparsity` label for the report table.
    pub label: String,
    /// Merged verification report across the cell's unsharded stream and
    /// every sharded decomposition.
    pub report: Report,
}

/// Synthesizes the deterministic per-row §V-E cover mix used for the
/// row-wise family cell (the densest-to-sparsest spread the format sweep
/// exercises; deterministic so repeated runs verify identical streams).
fn rowwise_ratios(rows: usize) -> Vec<NmRatio> {
    (0..rows)
        .map(|r| match r % 4 {
            0 | 3 => NmRatio::S1_4,
            1 => NmRatio::S2_4,
            _ => NmRatio::D4_4,
        })
        .collect()
}

/// Every distinct `(label, shape, spec)` cell the sweep verifies: the
/// deduped Fig. 13 grid at the ambient fidelity, plus one cell per kernel
/// family Fig. 13 does not select.
pub fn lint_cells() -> Vec<(String, GemmShape, KernelSpec)> {
    let fidelity = Fidelity::from_env();
    let opts = KernelOptions::default();
    let mut seen: HashSet<(GemmShape, KernelSpec)> = HashSet::new();
    let mut cells = Vec::new();
    let mut push = |label: String, shape: GemmShape, spec: KernelSpec| {
        if seen.insert((shape, spec.clone())) {
            cells.push((label, shape, spec));
        }
    };
    for layer in table4() {
        let shape = fidelity.shape_of(&layer);
        for engine in figure13_engines() {
            for ratio in figure13_sparsities() {
                let spec = engine.kernel_spec(ratio, opts);
                push(
                    format!("{}/{}@{ratio}", layer.name, spec.name()),
                    shape,
                    spec,
                );
            }
        }
    }
    // Families the Fig. 13 engine selection never picks, at a ragged
    // mid-size shape so odd tile remainders are exercised too.
    let extra_shape = GemmShape::new(93, 67, 197);
    for spec in [
        KernelSpec::RowWise {
            row_ratios: rowwise_ratios(extra_shape.m.div_ceil(4)),
        },
        KernelSpec::Listing1 {
            mode: SparseMode::Dense,
        },
        KernelSpec::Listing1 {
            mode: SparseMode::Nm1of4,
        },
        KernelSpec::Vector,
    ] {
        push(format!("family/{}", spec.name()), extra_shape, spec);
    }
    cells
}

/// Verifies every cell of [`lint_cells`] — unsharded, then across
/// [`LINT_SWEEP_CORES`] as both LPT 2D/K-split sets and static 1D splits.
/// Returns all cells with their merged reports (clean or not).
pub fn run_lint_sweep() -> Vec<LintCell> {
    lint_cells()
        .into_iter()
        .map(|(label, shape, spec)| {
            let mut report = verify_spec(&spec, shape);
            for cores in LINT_SWEEP_CORES {
                report.merge(verify_shard_set(&spec, shape, cores));
                report.merge(verify_shard_streams(&spec, shape, cores));
            }
            LintCell { label, report }
        })
        .collect()
}

/// Prints the acceptance sweep as a table and returns `true` when every
/// cell verified clean.
pub fn print_lint_sweep() -> bool {
    println!("## vegeta-lint: static verification of the evaluation's instruction streams");
    println!(
        "{:<44} {:>8} {:>12} {:>6}",
        "cell", "streams", "ops", "diags"
    );
    let cells = run_lint_sweep();
    let mut clean = true;
    for cell in &cells {
        println!(
            "{:<44} {:>8} {:>12} {:>6}",
            cell.label,
            cell.report.streams_checked,
            cell.report.ops_checked,
            cell.report.diagnostics.len()
        );
        if !cell.report.is_clean() {
            clean = false;
            eprintln!("{}", cell.report);
        }
    }
    let (streams, ops) = cells.iter().fold((0usize, 0u64), |(s, o), c| {
        (s + c.report.streams_checked, o + c.report.ops_checked)
    });
    println!(
        "verified {} cells / {streams} streams / {ops} ops: {}",
        cells.len(),
        if clean { "clean" } else { "DIAGNOSTICS FOUND" }
    );
    clean
}

/// Core count the replay cross-check shards at: enough for a real LPT
/// 2D/K-split plan and a multi-way event merge without making the sweep
/// simulate every scaling point twice.
pub const REPLAY_CHECK_CORES: usize = 4;

/// One replayed cell of the cross-check: verifier op counts next to what
/// the simulator actually consumed, unsharded and sharded.
#[derive(Debug)]
pub struct ReplayCell {
    /// `workload/kernel@sparsity` label for the report table.
    pub label: String,
    /// Ops the verifier walked in the unsharded stream.
    pub verified_ops: u64,
    /// Instructions the single-core simulator consumed from that stream.
    pub simulated_insts: u64,
    /// Ops the verifier walked across the [`REPLAY_CHECK_CORES`]-core LPT
    /// shard set (reduction included).
    pub verified_shard_ops: u64,
    /// Instructions the event-driven multi-core simulator consumed from
    /// the same shard set (reduction included).
    pub simulated_shard_insts: u64,
    /// Whether the host-parallel replay ([`ExecMode::ParallelHost`])
    /// produced a [`MultiCoreResult`] identical to the sequential event
    /// merge for this cell's shard set.
    pub exec_modes_agree: bool,
}

impl ReplayCell {
    /// Whether the simulator consumed exactly what the verifier checked,
    /// on both paths — and both execution modes agreed on the result.
    pub fn consistent(&self) -> bool {
        self.verified_ops == self.simulated_insts
            && self.verified_shard_ops == self.simulated_shard_insts
            && self.exec_modes_agree
    }
}

/// Replays every [`lint_cells`] cell through the production simulator and
/// cross-checks op accounting end to end: the instruction count the
/// simulator consumes must equal the op count the verifier walked — for
/// the unsharded stream on a single core, and for the
/// [`REPLAY_CHECK_CORES`]-core LPT shard set under the event-driven merge
/// loop (reduction pass included). A gap in either direction means the
/// verifier's green does not describe the streams the evaluation actually
/// simulates.
pub fn run_replay_check() -> Vec<ReplayCell> {
    let engine = EngineConfig::vegeta_s(16)
        .expect("valid alpha")
        .with_output_forwarding(true);
    lint_cells()
        .into_iter()
        .map(|(label, shape, spec)| {
            let verified_ops = verify_spec(&spec, shape).ops_checked;
            let mut core = CoreSim::new(SimConfig::default(), engine.clone());
            let simulated_insts = core.run_stream(spec.stream(shape)).instructions;

            let verified_shard_ops = verify_shard_set(&spec, shape, REPLAY_CHECK_CORES).ops_checked;
            let set = spec.shard_set(shape, REPLAY_CHECK_CORES);
            let mut mc = MultiCoreSim::new(
                MultiCoreConfig::with_core(SimConfig::default(), REPLAY_CHECK_CORES)
                    .with_exec(ExecMode::Sequential),
                engine.clone(),
            );
            let res = mc.run_sharded(set.shards, set.reduction, SchedulerPolicy::Lpt);

            // The same shard set under the host-parallel shared-L2 replay
            // must reproduce the sequential result exactly; a divergence
            // here is a verification failure, not a perf detail.
            let set = spec.shard_set(shape, REPLAY_CHECK_CORES);
            let mut mc = MultiCoreSim::new(
                MultiCoreConfig::with_core(SimConfig::default(), REPLAY_CHECK_CORES)
                    .with_exec(ExecMode::ParallelHost(2)),
                engine.clone(),
            );
            let parallel = mc.run_sharded(set.shards, set.reduction, SchedulerPolicy::Lpt);
            ReplayCell {
                label,
                verified_ops,
                simulated_insts,
                verified_shard_ops,
                simulated_shard_insts: res.instructions(),
                exec_modes_agree: parallel == res,
            }
        })
        .collect()
}

/// Prints the replay cross-check as a table and returns `true` when every
/// cell's simulator-consumed counts match the verifier's.
pub fn print_replay_check() -> bool {
    println!(
        "## vegeta-lint --replay: simulator-consumed instruction counts vs verified op counts"
    );
    println!(
        "{:<44} {:>12} {:>12} {:>12} {:>12} {:>7}",
        "cell", "verified", "simulated", "shard-ver", "shard-sim", "par-ok"
    );
    let cells = run_replay_check();
    let mut ok = true;
    for cell in &cells {
        println!(
            "{:<44} {:>12} {:>12} {:>12} {:>12} {:>7}",
            cell.label,
            cell.verified_ops,
            cell.simulated_insts,
            cell.verified_shard_ops,
            cell.simulated_shard_insts,
            if cell.exec_modes_agree { "yes" } else { "NO" }
        );
        if !cell.consistent() {
            ok = false;
            eprintln!(
                "MISMATCH {}: verifier walked {}/{} ops, simulator consumed {}/{}, \
                 parallel replay {}",
                cell.label,
                cell.verified_ops,
                cell.verified_shard_ops,
                cell.simulated_insts,
                cell.simulated_shard_insts,
                if cell.exec_modes_agree {
                    "agrees"
                } else {
                    "DIVERGES"
                }
            );
        }
    }
    println!(
        "replayed {} cells at 1 and {REPLAY_CHECK_CORES} cores (sequential + host-parallel): {}",
        cells.len(),
        if ok { "counts match" } else { "COUNTS DIVERGE" }
    );
    ok
}

/// Prints the mutation-corpus rejection self-test and returns `true` when
/// every seeded defect was rejected with its expected diagnostic.
pub fn run_self_test() -> bool {
    println!("## vegeta-lint --self-test: mutation corpus must be rejected");
    println!(
        "{:<28} {:>8} {:>10} {:>8}",
        "mutation", "expect", "rejected", "code-hit"
    );
    let mut ok = true;
    for (mutation, report) in vegeta::lint::run_corpus() {
        let rejected = !report.is_clean();
        let code_hit = report.has(mutation.expect());
        println!(
            "{:<28} {:>8} {:>10} {:>8}",
            mutation.name(),
            mutation.expect().to_string(),
            if rejected { "yes" } else { "NO" },
            if code_hit { "yes" } else { "NO" }
        );
        if !(rejected && code_hit) {
            ok = false;
            eprintln!("{report}");
        }
    }
    println!(
        "self-test: {}",
        if ok {
            "all mutations rejected"
        } else {
            "MUTATIONS ACCEPTED"
        }
    );
    ok
}
