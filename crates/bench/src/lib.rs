//! Experiment generators for every table and figure of the VEGETA
//! evaluation.
//!
//! Each `print_*` function regenerates one artifact of the paper and writes
//! it to stdout in the same rows/series the paper reports. The
//! `src/bin/*.rs` binaries are thin wrappers (one per table/figure), and the
//! `benches/figures.rs` bench target runs everything so that
//! `cargo bench` leaves a complete reproduction log.
//!
//! Absolute numbers differ from the paper (our substrate is a simulator
//! calibrated to the paper's microarchitectural parameters, not the
//! authors' RTL + MacSim installation); the *shapes* — who wins, by what
//! factor, where crossovers sit — are asserted by the test suite and
//! recorded against the paper in `EXPERIMENTS.md`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod lint_sweep;
pub mod perf_gate;
pub mod scaling;
pub mod serving;

pub use lint_sweep::{
    print_lint_sweep, print_replay_check, run_lint_sweep, run_replay_check, run_self_test,
};

/// Writes a JSON artifact named `file_name` into `$VEGETA_CSV_DIR` (when
/// set) or the workspace root; returns the path on success. Shared by the
/// perf-gate and scaling reports — artifact dumps log failures to stderr
/// rather than aborting an experiment.
pub(crate) fn write_artifact_json(
    file_name: &str,
    doc: &vegeta::json::JsonValue,
) -> Option<std::path::PathBuf> {
    let dir = std::env::var("VEGETA_CSV_DIR")
        .ok()
        .filter(|d| !d.is_empty())
        .unwrap_or_else(|| {
            let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
            if std::path::Path::new(root).is_dir() {
                root.to_string()
            } else {
                ".".to_string()
            }
        });
    let path = std::path::Path::new(&dir).join(file_name);
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, doc.to_string())) {
        Ok(()) => {
            eprintln!("wrote {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("could not write {}: {e}", path.display());
            None
        }
    }
}

use rand::rngs::SmallRng;
use rand::SeedableRng;
use vegeta::engine::{dataflow, rowwise, schedule_sequence, CostModel, EngineConfig, TileOp};
use vegeta::json::JsonValue;
use vegeta::model::roofline::{effective_tflops, RooflineEngine, RooflineParams, RooflineWorkload};
use vegeta::model::{table1, GranularityHw, GranularityModel};
use vegeta::num::Matrix;
use vegeta::prelude::*;
use vegeta::sparse::prune;

/// Scale factor applied to layer shapes when quick mode is requested
/// (`VEGETA_QUICK=1`); keeps CI and `cargo bench` fast while preserving
/// every trend. Re-exported from [`vegeta::session::quick_factor`].
pub use vegeta::session::quick_factor;

/// Table I: sparsity-granularity support matrix.
pub fn print_tab01() {
    println!("## Table I: supported sparsity granularity of N:M designs");
    println!(
        "{:<12} {:>12} {:>10} {:>10} {:>9}",
        "design", "network-wise", "layer-wise", "tile-wise", "row-wise"
    );
    let mark = |b: bool| if b { "yes" } else { "-" };
    for row in table1() {
        println!(
            "{:<12} {:>12} {:>10} {:>10} {:>9}",
            row.design,
            mark(row.network_wise),
            mark(row.layer_wise),
            mark(row.tile_wise),
            mark(row.row_wise)
        );
    }
    println!("(S2TA tile-wise carries the paper's footnote: extendable, not claimed.)\n");
}

/// Table III: engine design points with derived parameters.
pub fn print_tab03() {
    println!("## Table III: VEGETA-D and VEGETA-S design points");
    println!(
        "{:<16} {:>5} {:>5} {:>11} {:>10} {:>9} {:>6} {:>20}",
        "engine", "Nrows", "Ncols", "MACs/PE", "inputs/PE", "bcast(a)", "drain", "sparsity"
    );
    for cfg in EngineConfig::table3() {
        let patterns: Vec<String> = cfg
            .supported_patterns()
            .iter()
            .map(ToString::to_string)
            .collect();
        println!(
            "{:<16} {:>5} {:>5} {:>11} {:>10} {:>9} {:>6} {:>20}",
            cfg.name(),
            cfg.nrows(),
            cfg.ncols(),
            cfg.macs_per_pe(),
            cfg.inputs_per_pe(),
            cfg.alpha(),
            cfg.drain_latency(),
            patterns.join("/")
        );
    }
    println!();
}

/// Table IV: evaluation layer dimensions and MAC counts.
pub fn print_tab04() {
    println!("## Table IV: DNN layers used in the evaluation");
    println!(
        "{:<14} {:<52} {:>14}",
        "workload", "dimensions", "# of MACs"
    );
    for layer in table4() {
        let dims = match layer.kind {
            vegeta::workloads::LayerKind::Conv(c) => format!(
                "K={}, C={}, Y={}, X={}, R={}, S={} (GEMM {}x{}x{})",
                c.k,
                c.c,
                c.y,
                c.x,
                c.r,
                c.s,
                c.to_gemm().m,
                c.to_gemm().n,
                c.to_gemm().k
            ),
            vegeta::workloads::LayerKind::Gemm(g) => {
                format!("M={}, N={}, K={}", g.m, g.n, g.k)
            }
        };
        println!("{:<14} {:<52} {:>14}", layer.name, dims, layer.macs());
    }
    println!();
}

/// Fig. 3: roofline effective throughput vs density.
pub fn print_fig03() {
    println!("## Figure 3: effective compute throughput (TFLOPS) vs density");
    let params = RooflineParams::default();
    let workload = RooflineWorkload::conv_layer();
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>14}",
        "density%", "sparse-matrix", "dense-matrix", "sparse-vector", "dense-vector"
    );
    for pct in (0..=100).step_by(5) {
        let d = pct as f64 / 100.0;
        let row: Vec<f64> = RooflineEngine::all()
            .iter()
            .map(|&e| effective_tflops(&params, e, &workload, d))
            .collect();
        println!(
            "{:>8} {:>14.4} {:>14.4} {:>14.4} {:>14.4}",
            pct, row[0], row[1], row[2], row[3]
        );
    }
    println!();
}

/// Fig. 4: executed-instruction and runtime ratios, vector over matrix.
pub fn print_fig04() {
    println!("## Figure 4: vector over matrix engine, equal-sized GEMMs");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>14}",
        "dim", "vec insts", "mat insts", "inst ratio", "vec cycles", "mat cycles", "runtime ratio"
    );
    // Motivation experiment: the matrix engine shares the core clock here
    // (Fig. 13's 0.5 GHz engine domain is a separate, later design choice).
    let sim = SimConfig {
        engine_ghz: 2.0,
        ..SimConfig::default()
    };
    let session = Session::new(EngineConfig::rasa_dm()).with_sim(sim);
    for dim in [32usize, 64, 128] {
        let shape = GemmShape::new(dim, dim, dim);
        let label = format!("gemm-{dim}");
        let vec = session.run_spec(&label, shape, &KernelSpec::Vector);
        let mat = session.run_spec(&label, shape, &KernelSpec::tiled(SparseMode::Dense));
        println!(
            "{:>6} {:>12} {:>12} {:>12.1} {:>12} {:>12} {:>14.1}",
            dim,
            vec.instructions,
            mat.instructions,
            vec.instructions as f64 / mat.instructions as f64,
            vec.cycles,
            mat.cycles,
            vec.cycles as f64 / mat.cycles as f64
        );
    }
    println!();
}

/// Fig. 5: PE utilization of dense vs VEGETA engines on sparse weights.
pub fn print_fig05() {
    println!("## Figure 5: MAC utilization with sparse weights");
    println!(
        "{:>8} {:>26} {:>28}",
        "weights", "dense engine (RASA-DM)", "VEGETA-S-2-2 (compressed)"
    );
    let mut rng = SmallRng::seed_from_u64(5);
    let c_in = Matrix::zeros(16, 16);
    for (label, ratio) in [
        ("4:4", NmRatio::D4_4),
        ("2:4", NmRatio::S2_4),
        ("1:4", NmRatio::S1_4),
    ] {
        let dense_util = dense_engine_utilization(ratio, 5);
        // VEGETA-S: same sparsity, compressed; every stored value non-zero.
        let eff_cols = 32 / ratio.n() as usize * 4;
        let eff_wide = prune::random_nm(16, eff_cols, ratio, &mut rng);
        let tile = vegeta::sparse::CompressedTile::compress(&eff_wide, ratio).expect("conforming");
        let meta: Vec<u8> = tile.indices().to_vec();
        let bt = prune::random_dense(16, eff_cols, &mut rng);
        let sparse_op = dataflow::TileWiseOp {
            a_values: tile.values(),
            a_meta: if ratio.is_dense() { None } else { Some(&meta) },
            ratio,
            bt: &bt,
            c_in: &c_in,
        };
        let sparse_util =
            dataflow::simulate_tile(&EngineConfig::vegeta_s(2).expect("valid"), &sparse_op)
                .expect("sparse tile op")
                .firing_utilization();
        println!(
            "{:>8} {:>25.0}% {:>27.0}%",
            label,
            dense_util * 100.0,
            sparse_util * 100.0
        );
    }
    println!();
}

/// Figs. 8/9: cycle-level execution of the three tile instructions on
/// VEGETA-S-2-2.
pub fn print_fig09() {
    println!("## Figures 8/9: tile instruction execution on VEGETA-S-2-2");
    let cfg = EngineConfig::vegeta_s(2).expect("valid alpha");
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>14}",
        "instruction", "eff. K", "WL cycles", "last output", "effectual MACs"
    );
    let mut rng = SmallRng::seed_from_u64(9);
    let c_in = Matrix::zeros(16, 16);
    for (name, ratio) in [
        ("TILE_GEMM", NmRatio::D4_4),
        ("TILE_SPMM_U", NmRatio::S2_4),
        ("TILE_SPMM_V", NmRatio::S1_4),
    ] {
        let eff_cols = 32 / ratio.n() as usize * 4;
        let eff = prune::random_nm(16, eff_cols, ratio, &mut rng);
        let tile = vegeta::sparse::CompressedTile::compress(&eff, ratio).expect("conforming");
        let meta: Vec<u8> = tile.indices().to_vec();
        let bt = prune::random_dense(16, eff_cols, &mut rng);
        let op = dataflow::TileWiseOp {
            a_values: tile.values(),
            a_meta: if ratio.is_dense() { None } else { Some(&meta) },
            ratio,
            bt: &bt,
            c_in: &c_in,
        };
        let res = dataflow::simulate_tile(&cfg, &op).expect("supported op");
        println!(
            "{:<14} {:>10} {:>12} {:>12} {:>14}",
            name,
            eff_cols,
            cfg.wl_latency(),
            res.last_output_cycle,
            res.effectual_macs
        );
    }
    println!();
}

/// Fig. 10: pipelining with and without output forwarding.
pub fn print_fig10() {
    println!("## Figure 10: pipelined tile instructions (start cycles)");
    let chains: [(&str, Vec<TileOp>); 2] = [
        ("independent", (0..4).map(|i| TileOp { acc: i }).collect()),
        ("dependent (same C)", vec![TileOp { acc: 2 }; 4]),
    ];
    for (engine_name, cfg) in [
        ("VEGETA-D-1-2", EngineConfig::rasa_dm()),
        ("VEGETA-S-16-2", EngineConfig::vegeta_s(16).expect("valid")),
        (
            "VEGETA-S-16-2+OF",
            EngineConfig::vegeta_s(16)
                .expect("valid")
                .with_output_forwarding(true),
        ),
    ] {
        for (chain_name, ops) in &chains {
            let (timings, total) = schedule_sequence(&cfg, ops);
            let starts: Vec<String> = timings.iter().map(|t| t.start.to_string()).collect();
            println!(
                "{:<18} {:<20} starts=[{}] makespan={}",
                engine_name,
                chain_name,
                starts.join(", "),
                total
            );
        }
    }
    println!();
}

/// Runs the full Fig. 13 grid — 12 layers × 10 engines × {4:4, 2:4, 1:4} —
/// on the parallel [`Sweep`] runner with a shared trace cache.
pub fn figure13_sweep(quick: usize) -> SweepReport {
    Sweep::figure13().with_scale(quick).run()
}

/// Writes the per-engine geomean speedups of a Fig. 13 sweep to
/// `BENCH_fig13.json` (in `$VEGETA_CSV_DIR` when set, else the workspace
/// root), so the performance trajectory is machine-readable across PRs —
/// the cycle counts are simulated, so quick-mode output is deterministic
/// and diffable. Returns the path on success.
///
/// The committed workspace-root copy is the `VEGETA_QUICK=1` baseline;
/// full-size runs therefore only write when `$VEGETA_CSV_DIR` names an
/// explicit destination, so regenerating the figure at full scale never
/// dirties the tracked quick-mode artifact.
pub fn write_fig13_json(report: &SweepReport, quick: usize) -> Option<std::path::PathBuf> {
    let explicit = std::env::var("VEGETA_CSV_DIR")
        .ok()
        .filter(|d| !d.is_empty());
    let dir = match explicit {
        Some(dir) => dir,
        None if quick > 1 => {
            // Fall back to the workspace root when this binary still lives
            // in its build checkout, else the cwd.
            let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
            if std::path::Path::new(root).is_dir() {
                root.to_string()
            } else {
                ".".to_string()
            }
        }
        None => {
            eprintln!(
                "skipping BENCH_fig13.json: full-size run and no VEGETA_CSV_DIR \
                 (the tracked artifact is the quick-mode baseline)"
            );
            return None;
        }
    };
    write_fig13_json_to(report, quick, std::path::Path::new(&dir))
}

/// [`write_fig13_json`] with an explicit output directory.
pub fn write_fig13_json_to(
    report: &SweepReport,
    quick: usize,
    dir: &std::path::Path,
) -> Option<std::path::PathBuf> {
    let baseline = EngineConfig::rasa_dm().name().to_string();
    let mut per_sparsity = Vec::new();
    for sparsity in report.sparsities() {
        let mut per_engine = Vec::new();
        for engine in report.engines() {
            if let Some(g) = report.geomean_speedup(&baseline, engine, sparsity) {
                per_engine.push((engine.to_string(), JsonValue::from(g)));
            }
        }
        per_sparsity.push((sparsity.to_string(), JsonValue::Object(per_engine)));
    }
    // Only simulator-derived (deterministic) fields belong here: the file
    // is committed, and host details like thread count would make every
    // regeneration a spurious diff.
    let doc = JsonValue::Object(vec![
        ("figure".into(), "fig13".into()),
        ("baseline".into(), baseline.into()),
        ("quick_factor".into(), quick.into()),
        ("cells".into(), report.cells.len().into()),
        ("traces_built".into(), report.traces_built.into()),
        ("trace_cache_hits".into(), report.trace_cache_hits.into()),
        (
            "geomean_speedup_vs_baseline".into(),
            JsonValue::Object(per_sparsity),
        ),
    ]);
    let path = dir.join("BENCH_fig13.json");
    match std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, doc.to_string())) {
        Ok(()) => {
            eprintln!("wrote {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("could not write {}: {e}", path.display());
            None
        }
    }
}

/// Fig. 13: normalized runtime for every layer/engine/sparsity combination.
pub fn print_fig13() {
    let quick = quick_factor();
    if quick > 1 {
        println!("## Figure 13 (quick mode: layer dims / {quick})");
    } else {
        println!("## Figure 13: normalized runtime per layer/engine/sparsity");
    }
    let report = figure13_sweep(quick);
    report.save_csv("fig13_runtime");
    write_fig13_json(&report, quick);
    let max_cycles = report.max_cycles().expect("non-empty grid") as f64;
    println!("(normalized to the longest runtime, as in the paper)");
    let engines = figure13_engines();
    print!("{:<14} {:>4}", "layer", "spar");
    for e in &engines {
        let short = short_engine_name(e);
        print!(" {short:>9}");
    }
    println!();
    for layer in table4() {
        for sparsity in ["4:4", "2:4", "1:4"] {
            print!("{:<14} {:>4}", layer.name, sparsity);
            for engine in &engines {
                let cell = report
                    .get(layer.name, engine.name(), sparsity)
                    .expect("cell computed");
                print!(" {:>9.4}", cell.cycles as f64 / max_cycles);
            }
            println!();
        }
    }
    println!();
    println!(
        "(sweep ran on {} threads; {} traces built, {} cache hits; cache: \
         {} entries, {} resident, {} evictions)",
        report.threads,
        report.traces_built,
        report.trace_cache_hits,
        report.cache.entries,
        report.cache.resident,
        report.cache.evictions
    );
    // Summary speedups vs RASA-DM (the paper's headline comparison).
    let dm = EngineConfig::rasa_dm().name().to_string();
    let best = figure13_engines()
        .last()
        .expect("non-empty lineup")
        .name()
        .to_string();
    for sparsity in ["4:4", "2:4", "1:4"] {
        let g = report
            .geomean_speedup(&dm, &best, sparsity)
            .expect("complete grid");
        println!("geomean speedup of VEGETA-S-16-2+OF over RASA-DM at {sparsity}: {g:.2}x");
    }
    println!();
}

fn short_engine_name(e: &EngineConfig) -> String {
    let name = e.name();
    let short = if name.starts_with("RASA-SM") {
        "RASA-SM"
    } else if name.starts_with("RASA-DM") {
        "RASA-DM"
    } else if name.starts_with("TMUL") {
        "TMUL"
    } else if name.starts_with("STC") {
        "STC"
    } else {
        name
    };
    // The name already carries the "+OF" suffix for forwarding variants.
    short.replace("VEGETA-", "V-")
}

/// Fig. 14: area/power normalized to RASA-SM, and maximum frequency.
pub fn print_fig14() {
    println!("## Figure 14: area & power (normalized to RASA-SM) and max frequency");
    let model = CostModel::default();
    let base = EngineConfig::rasa_sm();
    println!(
        "{:<16} {:>10} {:>10} {:>12}",
        "engine", "norm area", "norm power", "freq (GHz)"
    );
    for cfg in EngineConfig::table3() {
        let (a, p) = model.normalized(&cfg, &base);
        let f = model.evaluate(&cfg).frequency_ghz;
        println!("{:<16} {:>10.3} {:>10.3} {:>12.3}", cfg.name(), a, p, f);
    }
    println!("(all designs meet the 0.5 GHz evaluation clock)\n");
}

/// Fig. 15: average speedup by sparsity-granularity support, 60–95% degrees.
pub fn print_fig15() {
    let quick = quick_factor();
    println!("## Figure 15: normalized speed-up vs unstructured sparsity degree");
    let model = GranularityModel::default();
    let hws = GranularityHw::all();
    print!("{:>8}", "degree%");
    for hw in &hws {
        let name = hw.name().split(' ').next().expect("non-empty name");
        print!(" {name:>12}");
    }
    println!();
    for pct in [60u32, 65, 70, 75, 80, 85, 90, 95] {
        let degree = pct as f64 / 100.0;
        print!("{pct:>8}");
        for hw in &hws {
            let speedups: Vec<f64> = table4()
                .iter()
                .enumerate()
                .map(|(i, layer)| {
                    let shape = layer.scaled_shape(quick);
                    let mut rng = SmallRng::seed_from_u64(1000 + i as u64 + pct as u64 * 13);
                    let a = prune::random_unstructured(shape.m, shape.k, degree, &mut rng);
                    model.speedup(*hw, &a)
                })
                .collect();
            print!(
                " {:>12.3}",
                speedups.iter().sum::<f64>() / speedups.len() as f64
            );
        }
        println!();
    }
    println!();
}

/// The §I headline: speedups of VEGETA-S-16-2(+OF) over the SOTA dense
/// engine (RASA-DM) at 4:4 / 2:4 / 1:4 / unstructured-95%.
pub fn print_headline() {
    let quick = quick_factor();
    println!("## Headline speedups vs RASA-DM (paper: 1.09x / 2.20x / 3.74x / 3.28x)");
    let cache = std::sync::Arc::new(TraceCache::new());
    let dm = Session::new(EngineConfig::rasa_dm()).with_cache(std::sync::Arc::clone(&cache));
    let s16 = Session::new(
        EngineConfig::vegeta_s(16)
            .expect("valid")
            .with_output_forwarding(true),
    )
    .with_cache(cache);
    for (label, ratio) in [
        ("4:4", NmRatio::D4_4),
        ("2:4", NmRatio::S2_4),
        ("1:4", NmRatio::S1_4),
    ] {
        let ratios: Vec<f64> = table4()
            .iter()
            .map(|layer| {
                let base = dm.run_layer_scaled(layer, ratio, quick);
                let ours = s16.run_layer_scaled(layer, ratio, quick);
                base.cycles as f64 / ours.cycles as f64
            })
            .collect();
        println!(
            "  {label}: {:.2}x",
            geomean(&ratios).expect("twelve layers")
        );
    }
    // Unstructured 95%: the row-wise transform's compute-bound speedup.
    let model = GranularityModel::default();
    let speedups: Vec<f64> = table4()
        .iter()
        .enumerate()
        .map(|(i, layer)| {
            let shape = layer.scaled_shape(quick);
            let mut rng = SmallRng::seed_from_u64(7000 + i as u64);
            let a = prune::random_unstructured(shape.m, shape.k, 0.95, &mut rng);
            model.speedup(GranularityHw::RowWise, &a)
        })
        .collect();
    println!(
        "  unstructured-95%: {:.2}x",
        speedups.iter().sum::<f64>() / speedups.len() as f64
    );
    println!();
}

/// Ablation: Listing-1 naive kernel vs the optimized kernel (register reuse
/// and accumulator rotation), run on VEGETA-S-16-2.
pub fn print_kernel_ablation() {
    let quick = quick_factor();
    println!("## Ablation: Listing-1 naive kernel vs optimized kernel (VEGETA-S-16-2+OF)");
    let session = Session::new(
        EngineConfig::vegeta_s(16)
            .expect("valid")
            .with_output_forwarding(true),
    );
    println!(
        "{:<14} {:>12} {:>12} {:>9}",
        "layer", "naive cyc", "opt cyc", "speedup"
    );
    for layer in table4().iter().take(4) {
        let shape = layer.scaled_shape(quick.max(2));
        let naive = session.run_spec(
            layer.name,
            shape,
            &KernelSpec::Listing1 {
                mode: SparseMode::Nm2of4,
            },
        );
        let opt = session.run_spec(layer.name, shape, &KernelSpec::tiled(SparseMode::Nm2of4));
        println!(
            "{:<14} {:>12} {:>12} {:>9.2}",
            layer.name,
            naive.cycles,
            opt.cycles,
            naive.cycles as f64 / opt.cycles as f64
        );
    }
    println!();
}

/// Ablation: output forwarding on/off across the VEGETA-S family.
pub fn print_of_ablation() {
    let quick = quick_factor().max(2);
    println!("## Ablation: output forwarding across VEGETA-S designs (2:4 BERT-L2)");
    let layer = table4()[7];
    let shape = layer.scaled_shape(quick);
    let rotated_spec = KernelSpec::tiled(SparseMode::Nm2of4);
    // A dependent variant: a single accumulator serializes the k loop.
    let dep_spec = KernelSpec::Tiled {
        mode: SparseMode::Nm2of4,
        opts: KernelOptions {
            unroll: 1,
            loop_overhead: true,
        },
    };
    println!(
        "{:<14} {:>14} {:>14} {:>14}",
        "engine", "rotated accs", "1 acc, no OF", "1 acc, OF"
    );
    let cache = std::sync::Arc::new(TraceCache::new());
    for alpha in [1usize, 2, 4, 8, 16] {
        let base = EngineConfig::vegeta_s(alpha).expect("valid");
        let session = Session::new(base.clone()).with_cache(std::sync::Arc::clone(&cache));
        let of_session = Session::new(base.with_output_forwarding(true))
            .with_cache(std::sync::Arc::clone(&cache));
        let rotated = session.run_spec(layer.name, shape, &rotated_spec);
        let no_of = session.run_spec(layer.name, shape, &dep_spec);
        let with_of = of_session.run_spec(layer.name, shape, &dep_spec);
        println!(
            "{:<14} {:>14} {:>14} {:>14}",
            format!("VEGETA-S-{alpha}-2"),
            rotated.cycles,
            no_of.cycles,
            with_of.cycles
        );
    }
    println!();
}

/// Row-wise packing summary (Fig. 11 / §V-E bookkeeping).
pub fn print_rowwise_packing() {
    println!("## Row-wise packing (SS V-E): TILE_SPMM_R tiles per sparsity degree");
    let model_rows = 256usize;
    println!(
        "{:>8} {:>12} {:>16} {:>16}",
        "degree%", "tiles", "mean util", "rows/tile"
    );
    for pct in [60u32, 80, 90, 95] {
        let mut rng = SmallRng::seed_from_u64(42 + pct as u64);
        let a = prune::random_unstructured(model_rows, 64, pct as f64 / 100.0, &mut rng);
        let mut covers = vegeta::sparse::transform::row_covers(&a, 4).expect("m=4");
        covers.sort();
        let tiles = rowwise::pack_rows(&covers);
        let stats = rowwise::packing_stats(&tiles);
        println!(
            "{:>8} {:>12} {:>16.3} {:>16.1}",
            pct,
            stats.instructions,
            stats.mean_utilization,
            stats.rows as f64 / stats.instructions as f64
        );
    }
    println!();
}

/// §VII analysis: dynamic-sparsity compaction feasibility for vector vs
/// tile registers.
pub fn print_dynamic_sparsity() {
    println!("## SS VII: dynamic sparsity via register compaction (SAVE-style merging)");
    println!(
        "{:>9} {:>20} {:>20} {:>18} {:>18}",
        "density%",
        "P(conflict) vec-32",
        "P(conflict) tile-512",
        "merge factor vec",
        "merge factor tile"
    );
    for pct in [5u32, 10, 20, 30, 50] {
        let d = pct as f64 / 100.0;
        let mut rng = SmallRng::seed_from_u64(600 + pct as u64);
        let vec_stats = vegeta::model::simulate_compaction(
            2000,
            vegeta::model::dynamic::VECTOR_REG_SLOTS,
            d,
            &mut rng,
        );
        let tile_stats = vegeta::model::simulate_compaction(
            2000,
            vegeta::model::dynamic::TILE_REG_SLOTS,
            d,
            &mut rng,
        );
        println!(
            "{:>9} {:>20.4} {:>20.4} {:>18.2} {:>18.2}",
            pct,
            vegeta::model::merge_conflict_probability(d, 32),
            vegeta::model::merge_conflict_probability(d, 512),
            vec_stats.merge_factor(),
            tile_stats.merge_factor()
        );
    }
    println!(
        "(the paper's conclusion: compaction pays on 32-slot vector registers but\n\
         collides almost surely on 512-slot tiles -- dynamic sparsity needs a\n\
         different mechanism, left as future work)\n"
    );
}

/// MAC utilization of the dense engine running sparse weights in dense
/// format (the Fig. 5 under-utilization numbers).
pub fn dense_engine_utilization(ratio: NmRatio, seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let eff = prune::random_nm(16, 32, ratio, &mut rng);
    let bt = prune::random_dense(16, 32, &mut rng);
    let c_in = Matrix::<f32>::zeros(16, 16);
    let op = dataflow::TileWiseOp {
        a_values: &eff,
        a_meta: None,
        ratio: NmRatio::D4_4,
        bt: &bt,
        c_in: &c_in,
    };
    dataflow::simulate_tile(&EngineConfig::rasa_dm(), &op)
        .expect("dense op always supported")
        .firing_utilization()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_dense_utilizations_match_paper() {
        assert!((dense_engine_utilization(NmRatio::S2_4, 1) - 0.5).abs() < 1e-9);
        assert!((dense_engine_utilization(NmRatio::S1_4, 2) - 0.25).abs() < 1e-9);
        assert!((dense_engine_utilization(NmRatio::D4_4, 3) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig13_vegeta_beats_dense_baseline_on_sparse_layer() {
        let shape = GemmShape::new(32, 32, 256);
        let cycles: Vec<u64> = [EngineConfig::rasa_dm(), EngineConfig::vegeta_s(16).unwrap()]
            .into_iter()
            .map(|engine| {
                Session::new(engine)
                    .run_shape("bench-smoke", shape, NmRatio::S2_4)
                    .cycles
            })
            .collect();
        assert!(
            cycles[1] < cycles[0],
            "VEGETA-S must beat RASA-DM on a 2:4 layer"
        );
    }

    #[test]
    fn fig13_json_artifact_is_valid_and_complete() {
        let small = Sweep::new()
            .with_engines(figure13_engines())
            .with_layers(table4().into_iter().take(2))
            .with_sparsities(figure13_sparsities())
            .with_scale(16)
            .run();
        // Process-unique dir: no env mutation, no clash with parallel runs.
        let dir = std::env::temp_dir().join(format!("vegeta_bench_json_{}", std::process::id()));
        let path = write_fig13_json_to(&small, 16, &dir).expect("json written");
        let text = std::fs::read_to_string(&path).expect("readable");
        let doc = JsonValue::parse(&text).expect("valid JSON");
        let speedups = doc
            .get("geomean_speedup_vs_baseline")
            .expect("speedup section");
        let at_14 = speedups.get("1:4").expect("1:4 sparsity present");
        let of_name = figure13_engines().last().unwrap().name().to_string();
        assert_eq!(of_name, "VEGETA-S-16-2+OF");
        let best = at_14
            .get(&of_name)
            .and_then(JsonValue::as_f64)
            .expect("best engine present");
        assert!(best > 1.0, "VEGETA-S-16-2+OF must beat RASA-DM at 1:4");
        // The +OF variant must be its own column, not collapsed onto the
        // non-OF design point: ten engines in, ten engines out.
        assert_eq!(small.engines().len(), figure13_engines().len());
        std::fs::remove_dir_all(&dir).ok();
    }
}
