//! Experiment generators for every table and figure of the VEGETA
//! evaluation.
//!
//! Each `print_*` function regenerates one artifact of the paper and writes
//! it to stdout in the same rows/series the paper reports. The
//! `src/bin/*.rs` binaries are thin wrappers (one per table/figure), and the
//! `benches/figures.rs` bench target runs everything so that
//! `cargo bench` leaves a complete reproduction log.
//!
//! Absolute numbers differ from the paper (our substrate is a simulator
//! calibrated to the paper's microarchitectural parameters, not the
//! authors' RTL + MacSim installation); the *shapes* — who wins, by what
//! factor, where crossovers sit — are asserted by the test suite and
//! recorded against the paper in `EXPERIMENTS.md`.

#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::SeedableRng;
use vegeta::engine::{dataflow, rowwise, schedule_sequence, CostModel, EngineConfig, TileOp};
use vegeta::experiments::{execution_mode, figure13_engines, geomean, run_trace};
use vegeta::kernels::{
    build_listing1_trace, build_trace, build_vector_gemm_trace, GemmShape, KernelOptions,
    SparseMode,
};
use vegeta::model::roofline::{effective_tflops, RooflineEngine, RooflineParams, RooflineWorkload};
use vegeta::model::{table1, GranularityHw, GranularityModel};
use vegeta::num::Matrix;
use vegeta::sim::SimConfig;
use vegeta::sparse::{prune, NmRatio};
use vegeta::workloads::{table4, Layer};

/// Scale factor applied to layer shapes when quick mode is requested
/// (`VEGETA_QUICK=1`); keeps CI and `cargo bench` fast while preserving
/// every trend.
pub fn quick_factor() -> usize {
    match std::env::var("VEGETA_QUICK") {
        Ok(v) if v != "0" && !v.is_empty() => 4,
        _ => 1,
    }
}

/// Writes `rows` (including a header row) as CSV into
/// `$VEGETA_CSV_DIR/<name>.csv` when that environment variable is set;
/// silently does nothing otherwise. Returns whether a file was written.
pub fn write_csv(name: &str, rows: &[Vec<String>]) -> bool {
    let Ok(dir) = std::env::var("VEGETA_CSV_DIR") else {
        return false;
    };
    if dir.is_empty() {
        return false;
    }
    let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
    let body: String = rows.iter().map(|r| r.join(",") + "\n").collect();
    match std::fs::create_dir_all(&dir).and_then(|_| std::fs::write(&path, body)) {
        Ok(()) => {
            eprintln!("wrote {}", path.display());
            true
        }
        Err(e) => {
            eprintln!("could not write {}: {e}", path.display());
            false
        }
    }
}

fn layer_shape(layer: &Layer, quick: usize) -> GemmShape {
    let s = layer.gemm_shape();
    if quick == 1 {
        s
    } else {
        GemmShape::new(
            (s.m / quick).max(16),
            (s.n / quick).max(16),
            (s.k / quick).max(128),
        )
    }
}

/// Table I: sparsity-granularity support matrix.
pub fn print_tab01() {
    println!("## Table I: supported sparsity granularity of N:M designs");
    println!(
        "{:<12} {:>12} {:>10} {:>10} {:>9}",
        "design", "network-wise", "layer-wise", "tile-wise", "row-wise"
    );
    let mark = |b: bool| if b { "yes" } else { "-" };
    for row in table1() {
        println!(
            "{:<12} {:>12} {:>10} {:>10} {:>9}",
            row.design,
            mark(row.network_wise),
            mark(row.layer_wise),
            mark(row.tile_wise),
            mark(row.row_wise)
        );
    }
    println!("(S2TA tile-wise carries the paper's footnote: extendable, not claimed.)\n");
}

/// Table III: engine design points with derived parameters.
pub fn print_tab03() {
    println!("## Table III: VEGETA-D and VEGETA-S design points");
    println!(
        "{:<16} {:>5} {:>5} {:>11} {:>10} {:>9} {:>6} {:>20}",
        "engine", "Nrows", "Ncols", "MACs/PE", "inputs/PE", "bcast(a)", "drain", "sparsity"
    );
    for cfg in EngineConfig::table3() {
        let patterns: Vec<String> = cfg
            .supported_patterns()
            .iter()
            .map(|p| p.to_string())
            .collect();
        println!(
            "{:<16} {:>5} {:>5} {:>11} {:>10} {:>9} {:>6} {:>20}",
            cfg.name(),
            cfg.nrows(),
            cfg.ncols(),
            cfg.macs_per_pe(),
            cfg.inputs_per_pe(),
            cfg.alpha(),
            cfg.drain_latency(),
            patterns.join("/")
        );
    }
    println!();
}

/// Table IV: evaluation layer dimensions and MAC counts.
pub fn print_tab04() {
    println!("## Table IV: DNN layers used in the evaluation");
    println!(
        "{:<14} {:<52} {:>14}",
        "workload", "dimensions", "# of MACs"
    );
    for layer in table4() {
        let dims = match layer.kind {
            vegeta::workloads::LayerKind::Conv(c) => format!(
                "K={}, C={}, Y={}, X={}, R={}, S={} (GEMM {}x{}x{})",
                c.k,
                c.c,
                c.y,
                c.x,
                c.r,
                c.s,
                c.to_gemm().m,
                c.to_gemm().n,
                c.to_gemm().k
            ),
            vegeta::workloads::LayerKind::Gemm(g) => {
                format!("M={}, N={}, K={}", g.m, g.n, g.k)
            }
        };
        println!("{:<14} {:<52} {:>14}", layer.name, dims, layer.macs());
    }
    println!();
}

/// Fig. 3: roofline effective throughput vs density.
pub fn print_fig03() {
    println!("## Figure 3: effective compute throughput (TFLOPS) vs density");
    let params = RooflineParams::default();
    let workload = RooflineWorkload::conv_layer();
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>14}",
        "density%", "sparse-matrix", "dense-matrix", "sparse-vector", "dense-vector"
    );
    for pct in (0..=100).step_by(5) {
        let d = pct as f64 / 100.0;
        let row: Vec<f64> = RooflineEngine::all()
            .iter()
            .map(|&e| effective_tflops(&params, e, &workload, d))
            .collect();
        println!(
            "{:>8} {:>14.4} {:>14.4} {:>14.4} {:>14.4}",
            pct, row[0], row[1], row[2], row[3]
        );
    }
    println!();
}

/// Fig. 4: executed-instruction and runtime ratios, vector over matrix.
pub fn print_fig04() {
    println!("## Figure 4: vector over matrix engine, equal-sized GEMMs");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>14}",
        "dim", "vec insts", "mat insts", "inst ratio", "vec cycles", "mat cycles", "runtime ratio"
    );
    // Motivation experiment: the matrix engine shares the core clock here
    // (Fig. 13's 0.5 GHz engine domain is a separate, later design choice).
    let sim = SimConfig {
        engine_ghz: 2.0,
        ..SimConfig::default()
    };
    for dim in [32usize, 64, 128] {
        let shape = GemmShape::new(dim, dim, dim);
        let vec_trace = build_vector_gemm_trace(shape);
        let mat_trace = build_trace(shape, SparseMode::Dense, KernelOptions::default());
        let vec_res = run_trace(&vec_trace, &EngineConfig::rasa_dm(), sim.clone());
        let mat_res = run_trace(&mat_trace, &EngineConfig::rasa_dm(), sim.clone());
        println!(
            "{:>6} {:>12} {:>12} {:>12.1} {:>12} {:>12} {:>14.1}",
            dim,
            vec_trace.len(),
            mat_trace.len(),
            vec_trace.len() as f64 / mat_trace.len() as f64,
            vec_res.core_cycles,
            mat_res.core_cycles,
            vec_res.core_cycles as f64 / mat_res.core_cycles as f64
        );
    }
    println!();
}

/// Fig. 5: PE utilization of dense vs VEGETA engines on sparse weights.
pub fn print_fig05() {
    println!("## Figure 5: MAC utilization with sparse weights");
    println!(
        "{:>8} {:>26} {:>28}",
        "weights", "dense engine (RASA-DM)", "VEGETA-S-2-2 (compressed)"
    );
    let mut rng = SmallRng::seed_from_u64(5);
    let c_in = Matrix::zeros(16, 16);
    for (label, ratio) in [
        ("4:4", NmRatio::D4_4),
        ("2:4", NmRatio::S2_4),
        ("1:4", NmRatio::S1_4),
    ] {
        let dense_util = dense_engine_utilization(ratio, 5);
        // VEGETA-S: same sparsity, compressed; every stored value non-zero.
        let eff_cols = 32 / ratio.n() as usize * 4;
        let eff_wide = prune::random_nm(16, eff_cols, ratio, &mut rng);
        let tile = vegeta::sparse::CompressedTile::compress(&eff_wide, ratio).expect("conforming");
        let meta: Vec<u8> = tile.indices().to_vec();
        let bt = prune::random_dense(16, eff_cols, &mut rng);
        let sparse_op = dataflow::TileWiseOp {
            a_values: tile.values(),
            a_meta: if ratio.is_dense() { None } else { Some(&meta) },
            ratio,
            bt: &bt,
            c_in: &c_in,
        };
        let sparse_util =
            dataflow::simulate_tile(&EngineConfig::vegeta_s(2).expect("valid"), &sparse_op)
                .expect("sparse tile op")
                .firing_utilization();
        println!(
            "{:>8} {:>25.0}% {:>27.0}%",
            label,
            dense_util * 100.0,
            sparse_util * 100.0
        );
    }
    println!();
}

/// Figs. 8/9: cycle-level execution of the three tile instructions on
/// VEGETA-S-2-2.
pub fn print_fig09() {
    println!("## Figures 8/9: tile instruction execution on VEGETA-S-2-2");
    let cfg = EngineConfig::vegeta_s(2).expect("valid alpha");
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>14}",
        "instruction", "eff. K", "WL cycles", "last output", "effectual MACs"
    );
    let mut rng = SmallRng::seed_from_u64(9);
    let c_in = Matrix::zeros(16, 16);
    for (name, ratio) in [
        ("TILE_GEMM", NmRatio::D4_4),
        ("TILE_SPMM_U", NmRatio::S2_4),
        ("TILE_SPMM_V", NmRatio::S1_4),
    ] {
        let eff_cols = 32 / ratio.n() as usize * 4;
        let eff = prune::random_nm(16, eff_cols, ratio, &mut rng);
        let tile = vegeta::sparse::CompressedTile::compress(&eff, ratio).expect("conforming");
        let meta: Vec<u8> = tile.indices().to_vec();
        let bt = prune::random_dense(16, eff_cols, &mut rng);
        let op = dataflow::TileWiseOp {
            a_values: tile.values(),
            a_meta: if ratio.is_dense() { None } else { Some(&meta) },
            ratio,
            bt: &bt,
            c_in: &c_in,
        };
        let res = dataflow::simulate_tile(&cfg, &op).expect("supported op");
        println!(
            "{:<14} {:>10} {:>12} {:>12} {:>14}",
            name,
            eff_cols,
            cfg.wl_latency(),
            res.last_output_cycle,
            res.effectual_macs
        );
    }
    println!();
}

/// Fig. 10: pipelining with and without output forwarding.
pub fn print_fig10() {
    println!("## Figure 10: pipelined tile instructions (start cycles)");
    let chains: [(&str, Vec<TileOp>); 2] = [
        ("independent", (0..4).map(|i| TileOp { acc: i }).collect()),
        ("dependent (same C)", vec![TileOp { acc: 2 }; 4]),
    ];
    for (engine_name, cfg) in [
        ("VEGETA-D-1-2", EngineConfig::rasa_dm()),
        ("VEGETA-S-16-2", EngineConfig::vegeta_s(16).expect("valid")),
        (
            "VEGETA-S-16-2+OF",
            EngineConfig::vegeta_s(16)
                .expect("valid")
                .with_output_forwarding(true),
        ),
    ] {
        for (chain_name, ops) in &chains {
            let (timings, total) = schedule_sequence(&cfg, ops);
            let starts: Vec<String> = timings.iter().map(|t| t.start.to_string()).collect();
            println!(
                "{:<18} {:<20} starts=[{}] makespan={}",
                engine_name,
                chain_name,
                starts.join(", "),
                total
            );
        }
    }
    println!();
}

/// One Fig. 13 cell: runtime of a layer/engine/sparsity combination.
#[derive(Debug, Clone)]
pub struct Fig13Cell {
    /// Layer name.
    pub layer: &'static str,
    /// Engine name.
    pub engine: String,
    /// Weight sparsity label.
    pub sparsity: &'static str,
    /// Runtime in core cycles.
    pub cycles: u64,
}

/// Computes the full Fig. 13 grid: 12 layers × 10 engines × {4:4, 2:4, 1:4}.
pub fn figure13_grid(quick: usize) -> Vec<Fig13Cell> {
    let sparsities = [
        ("4:4", NmRatio::D4_4),
        ("2:4", NmRatio::S2_4),
        ("1:4", NmRatio::S1_4),
    ];
    let engines = figure13_engines();
    let mut cells = Vec::new();
    for layer in table4() {
        let shape = layer_shape(&layer, quick);
        // Build each distinct kernel trace once per layer.
        let traces: Vec<(SparseMode, vegeta::isa::trace::Trace)> =
            [SparseMode::Dense, SparseMode::Nm2of4, SparseMode::Nm1of4]
                .into_iter()
                .map(|m| (m, build_trace(shape, m, KernelOptions::default())))
                .collect();
        for (label, ratio) in sparsities {
            for engine in &engines {
                let mode = execution_mode(engine, ratio);
                let trace = &traces
                    .iter()
                    .find(|(m, _)| *m == mode)
                    .expect("mode built")
                    .1;
                let res = run_trace(trace, engine, SimConfig::default());
                cells.push(Fig13Cell {
                    layer: layer.name,
                    engine: engine.name().to_string(),
                    sparsity: label,
                    cycles: res.core_cycles,
                });
            }
        }
    }
    cells
}

/// Fig. 13: normalized runtime for every layer/engine/sparsity combination.
pub fn print_fig13() {
    let quick = quick_factor();
    if quick > 1 {
        println!("## Figure 13 (quick mode: layer dims / {quick})");
    } else {
        println!("## Figure 13: normalized runtime per layer/engine/sparsity");
    }
    let cells = figure13_grid(quick);
    let mut csv = vec![vec![
        "layer".to_string(),
        "sparsity".to_string(),
        "engine".to_string(),
        "cycles".to_string(),
    ]];
    csv.extend(cells.iter().map(|c| {
        vec![
            c.layer.to_string(),
            c.sparsity.to_string(),
            c.engine.clone(),
            c.cycles.to_string(),
        ]
    }));
    write_csv("fig13_runtime", &csv);
    let max_cycles = cells
        .iter()
        .map(|c| c.cycles)
        .max()
        .expect("non-empty grid") as f64;
    println!("(normalized to the longest runtime, as in the paper)");
    let engines = figure13_engines();
    print!("{:<14} {:>4}", "layer", "spar");
    for e in &engines {
        let short = short_engine_name(e);
        print!(" {:>9}", short);
    }
    println!();
    for layer in table4() {
        for sparsity in ["4:4", "2:4", "1:4"] {
            print!("{:<14} {:>4}", layer.name, sparsity);
            for engine in &engines {
                let cell = cells
                    .iter()
                    .find(|c| {
                        c.layer == layer.name && c.sparsity == sparsity && c.engine == engine.name()
                    })
                    .expect("cell computed");
                print!(" {:>9.4}", cell.cycles as f64 / max_cycles);
            }
            println!();
        }
    }
    println!();
    // Summary speedups vs RASA-DM (the paper's headline comparison).
    let dm = EngineConfig::rasa_dm().name().to_string();
    let best = figure13_engines()
        .last()
        .expect("non-empty lineup")
        .name()
        .to_string();
    for sparsity in ["4:4", "2:4", "1:4"] {
        let ratios: Vec<f64> = table4()
            .iter()
            .map(|l| {
                let base = cells
                    .iter()
                    .find(|c| c.layer == l.name && c.sparsity == sparsity && c.engine == dm)
                    .expect("baseline cell");
                let ours = cells
                    .iter()
                    .find(|c| c.layer == l.name && c.sparsity == sparsity && c.engine == best)
                    .expect("vegeta cell");
                base.cycles as f64 / ours.cycles as f64
            })
            .collect();
        println!(
            "geomean speedup of VEGETA-S-16-2+OF over RASA-DM at {sparsity}: {:.2}x",
            geomean(&ratios)
        );
    }
    println!();
}

fn short_engine_name(e: &EngineConfig) -> String {
    let name = e.name();
    let short = if name.starts_with("RASA-SM") {
        "RASA-SM"
    } else if name.starts_with("RASA-DM") {
        "RASA-DM"
    } else if name.starts_with("TMUL") {
        "TMUL"
    } else if name.starts_with("STC") {
        "STC"
    } else {
        name
    };
    let mut s = short.replace("VEGETA-", "V-");
    if e.output_forwarding() {
        s.push_str("+OF");
    }
    s
}

/// Fig. 14: area/power normalized to RASA-SM, and maximum frequency.
pub fn print_fig14() {
    println!("## Figure 14: area & power (normalized to RASA-SM) and max frequency");
    let model = CostModel::default();
    let base = EngineConfig::rasa_sm();
    println!(
        "{:<16} {:>10} {:>10} {:>12}",
        "engine", "norm area", "norm power", "freq (GHz)"
    );
    for cfg in EngineConfig::table3() {
        let (a, p) = model.normalized(&cfg, &base);
        let f = model.evaluate(&cfg).frequency_ghz;
        println!("{:<16} {:>10.3} {:>10.3} {:>12.3}", cfg.name(), a, p, f);
    }
    println!("(all designs meet the 0.5 GHz evaluation clock)\n");
}

/// Fig. 15: average speedup by sparsity-granularity support, 60–95% degrees.
pub fn print_fig15() {
    let quick = quick_factor();
    println!("## Figure 15: normalized speed-up vs unstructured sparsity degree");
    let model = GranularityModel::default();
    let hws = GranularityHw::all();
    print!("{:>8}", "degree%");
    for hw in &hws {
        let name = hw.name().split(' ').next().expect("non-empty name");
        print!(" {:>12}", name);
    }
    println!();
    for pct in [60u32, 65, 70, 75, 80, 85, 90, 95] {
        let degree = pct as f64 / 100.0;
        print!("{:>8}", pct);
        for hw in &hws {
            let speedups: Vec<f64> = table4()
                .iter()
                .enumerate()
                .map(|(i, layer)| {
                    let shape = layer_shape(layer, quick);
                    let mut rng = SmallRng::seed_from_u64(1000 + i as u64 + pct as u64 * 13);
                    let a = prune::random_unstructured(shape.m, shape.k, degree, &mut rng);
                    model.speedup(*hw, &a)
                })
                .collect();
            print!(
                " {:>12.3}",
                speedups.iter().sum::<f64>() / speedups.len() as f64
            );
        }
        println!();
    }
    println!();
}

/// The §I headline: speedups of VEGETA-S-16-2(+OF) over the SOTA dense
/// engine (RASA-DM) at 4:4 / 2:4 / 1:4 / unstructured-95%.
pub fn print_headline() {
    let quick = quick_factor();
    println!("## Headline speedups vs RASA-DM (paper: 1.09x / 2.20x / 3.74x / 3.28x)");
    let dm = EngineConfig::rasa_dm();
    let s16 = EngineConfig::vegeta_s(16)
        .expect("valid")
        .with_output_forwarding(true);
    for (label, ratio) in [
        ("4:4", NmRatio::D4_4),
        ("2:4", NmRatio::S2_4),
        ("1:4", NmRatio::S1_4),
    ] {
        let ratios: Vec<f64> = table4()
            .iter()
            .map(|layer| {
                let shape = layer_shape(layer, quick);
                let base_trace =
                    build_trace(shape, execution_mode(&dm, ratio), KernelOptions::default());
                let our_trace =
                    build_trace(shape, execution_mode(&s16, ratio), KernelOptions::default());
                let base = run_trace(&base_trace, &dm, SimConfig::default());
                let ours = run_trace(&our_trace, &s16, SimConfig::default());
                base.core_cycles as f64 / ours.core_cycles as f64
            })
            .collect();
        println!("  {label}: {:.2}x", geomean(&ratios));
    }
    // Unstructured 95%: the row-wise transform's compute-bound speedup.
    let model = GranularityModel::default();
    let speedups: Vec<f64> = table4()
        .iter()
        .enumerate()
        .map(|(i, layer)| {
            let shape = layer_shape(layer, quick);
            let mut rng = SmallRng::seed_from_u64(7000 + i as u64);
            let a = prune::random_unstructured(shape.m, shape.k, 0.95, &mut rng);
            model.speedup(GranularityHw::RowWise, &a)
        })
        .collect();
    println!(
        "  unstructured-95%: {:.2}x",
        speedups.iter().sum::<f64>() / speedups.len() as f64
    );
    println!();
}

/// Ablation: Listing-1 naive kernel vs the optimized kernel (register reuse
/// and accumulator rotation), run on VEGETA-S-16-2.
pub fn print_kernel_ablation() {
    let quick = quick_factor();
    println!("## Ablation: Listing-1 naive kernel vs optimized kernel (VEGETA-S-16-2+OF)");
    let engine = EngineConfig::vegeta_s(16)
        .expect("valid")
        .with_output_forwarding(true);
    println!(
        "{:<14} {:>12} {:>12} {:>9}",
        "layer", "naive cyc", "opt cyc", "speedup"
    );
    for layer in table4().iter().take(4) {
        let shape = layer_shape(layer, quick.max(2));
        let naive = build_listing1_trace(shape, SparseMode::Nm2of4);
        let opt = build_trace(shape, SparseMode::Nm2of4, KernelOptions::default());
        let naive_res = run_trace(&naive, &engine, SimConfig::default());
        let opt_res = run_trace(&opt, &engine, SimConfig::default());
        println!(
            "{:<14} {:>12} {:>12} {:>9.2}",
            layer.name,
            naive_res.core_cycles,
            opt_res.core_cycles,
            naive_res.core_cycles as f64 / opt_res.core_cycles as f64
        );
    }
    println!();
}

/// Ablation: output forwarding on/off across the VEGETA-S family.
pub fn print_of_ablation() {
    let quick = quick_factor().max(2);
    println!("## Ablation: output forwarding across VEGETA-S designs (2:4 BERT-L2)");
    let layer = table4()[7];
    let shape = layer_shape(&layer, quick);
    let trace = build_trace(shape, SparseMode::Nm2of4, KernelOptions::default());
    // A dependent variant: a single accumulator serializes the k loop.
    let dep_trace = build_trace(
        shape,
        SparseMode::Nm2of4,
        KernelOptions {
            unroll: 1,
            loop_overhead: true,
        },
    );
    println!(
        "{:<14} {:>14} {:>14} {:>14}",
        "engine", "rotated accs", "1 acc, no OF", "1 acc, OF"
    );
    for alpha in [1usize, 2, 4, 8, 16] {
        let base = EngineConfig::vegeta_s(alpha).expect("valid");
        let rotated = run_trace(&trace, &base, SimConfig::default());
        let no_of = run_trace(&dep_trace, &base, SimConfig::default());
        let with_of = run_trace(
            &dep_trace,
            &base.clone().with_output_forwarding(true),
            SimConfig::default(),
        );
        println!(
            "{:<14} {:>14} {:>14} {:>14}",
            format!("VEGETA-S-{alpha}-2"),
            rotated.core_cycles,
            no_of.core_cycles,
            with_of.core_cycles
        );
    }
    println!();
}

/// Row-wise packing summary (Fig. 11 / §V-E bookkeeping).
pub fn print_rowwise_packing() {
    println!("## Row-wise packing (SS V-E): TILE_SPMM_R tiles per sparsity degree");
    let model_rows = 256usize;
    println!(
        "{:>8} {:>12} {:>16} {:>16}",
        "degree%", "tiles", "mean util", "rows/tile"
    );
    for pct in [60u32, 80, 90, 95] {
        let mut rng = SmallRng::seed_from_u64(42 + pct as u64);
        let a = prune::random_unstructured(model_rows, 64, pct as f64 / 100.0, &mut rng);
        let mut covers = vegeta::sparse::transform::row_covers(&a, 4).expect("m=4");
        covers.sort();
        let tiles = rowwise::pack_rows(&covers);
        let stats = rowwise::packing_stats(&tiles);
        println!(
            "{:>8} {:>12} {:>16.3} {:>16.1}",
            pct,
            stats.instructions,
            stats.mean_utilization,
            stats.rows as f64 / stats.instructions as f64
        );
    }
    println!();
}

/// §VII analysis: dynamic-sparsity compaction feasibility for vector vs
/// tile registers.
pub fn print_dynamic_sparsity() {
    println!("## SS VII: dynamic sparsity via register compaction (SAVE-style merging)");
    println!(
        "{:>9} {:>20} {:>20} {:>18} {:>18}",
        "density%",
        "P(conflict) vec-32",
        "P(conflict) tile-512",
        "merge factor vec",
        "merge factor tile"
    );
    for pct in [5u32, 10, 20, 30, 50] {
        let d = pct as f64 / 100.0;
        let mut rng = SmallRng::seed_from_u64(600 + pct as u64);
        let vec_stats = vegeta::model::simulate_compaction(
            2000,
            vegeta::model::dynamic::VECTOR_REG_SLOTS,
            d,
            &mut rng,
        );
        let tile_stats = vegeta::model::simulate_compaction(
            2000,
            vegeta::model::dynamic::TILE_REG_SLOTS,
            d,
            &mut rng,
        );
        println!(
            "{:>9} {:>20.4} {:>20.4} {:>18.2} {:>18.2}",
            pct,
            vegeta::model::merge_conflict_probability(d, 32),
            vegeta::model::merge_conflict_probability(d, 512),
            vec_stats.merge_factor(),
            tile_stats.merge_factor()
        );
    }
    println!(
        "(the paper's conclusion: compaction pays on 32-slot vector registers but\n\
         collides almost surely on 512-slot tiles -- dynamic sparsity needs a\n\
         different mechanism, left as future work)\n"
    );
}

/// MAC utilization of the dense engine running sparse weights in dense
/// format (the Fig. 5 under-utilization numbers).
pub fn dense_engine_utilization(ratio: NmRatio, seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let eff = prune::random_nm(16, 32, ratio, &mut rng);
    let bt = prune::random_dense(16, 32, &mut rng);
    let c_in = Matrix::<f32>::zeros(16, 16);
    let op = dataflow::TileWiseOp {
        a_values: &eff,
        a_meta: None,
        ratio: NmRatio::D4_4,
        bt: &bt,
        c_in: &c_in,
    };
    dataflow::simulate_tile(&EngineConfig::rasa_dm(), &op)
        .expect("dense op always supported")
        .firing_utilization()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_dense_utilizations_match_paper() {
        assert!((dense_engine_utilization(NmRatio::S2_4, 1) - 0.5).abs() < 1e-9);
        assert!((dense_engine_utilization(NmRatio::S1_4, 2) - 0.25).abs() < 1e-9);
        assert!((dense_engine_utilization(NmRatio::D4_4, 3) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig13_vegeta_beats_dense_baseline_on_sparse_layer() {
        let shape = GemmShape::new(32, 32, 256);
        let engines = [EngineConfig::rasa_dm(), EngineConfig::vegeta_s(16).unwrap()];
        let mut cycles = Vec::new();
        for engine in &engines {
            let mode = execution_mode(engine, NmRatio::S2_4);
            let trace = build_trace(shape, mode, KernelOptions::default());
            cycles.push(run_trace(&trace, engine, SimConfig::default()).core_cycles);
        }
        assert!(
            cycles[1] < cycles[0],
            "VEGETA-S must beat RASA-DM on a 2:4 layer"
        );
    }
}
