//! Criterion benchmarks for the host-parallel multi-core execution mode:
//! the same pinned 8-simulated-core LPT shard set replayed sequentially
//! (the event-driven merge) and under [`ExecMode::ParallelHost`] at 1, 2,
//! 4 and 8 host threads.
//!
//! The results are asserted identical elsewhere
//! (`sim/tests/parallel_vs_event.rs`); these benches track the host-side
//! speedup the per-core worker threads buy. On an N-CPU host the curve
//! should rise until the host-thread count passes min(N, simulated
//! cores); past that the extra threads only queue.

use criterion::{criterion_group, criterion_main, Criterion};
use vegeta::prelude::*;

/// The pinned workload: one perf-gate layer at 2:4 weights on the
/// flexible VEGETA-S design, sharded across 8 simulated cores — the same
/// cell class the perf gate's `geomean_multicore_insts_per_sec` floors.
fn pinned() -> (GemmShape, KernelSpec, EngineConfig) {
    let shape = GemmShape::new(128, 128, 512);
    let engine = EngineConfig::vegeta_s(16)
        .expect("valid alpha")
        .with_output_forwarding(true);
    let spec = engine.kernel_spec(NmRatio::S2_4, KernelOptions::default());
    (shape, spec, engine)
}

const SIM_CORES: usize = 8;

fn run(exec: ExecMode) -> u64 {
    let (shape, spec, engine) = pinned();
    let set = spec.shard_set(shape, SIM_CORES);
    MultiCoreSim::new(MultiCoreConfig::new(SIM_CORES).with_exec(exec), engine)
        .run_sharded(set.shards, set.reduction, SchedulerPolicy::Lpt)
        .core_cycles
}

fn bench_parallel_sim(c: &mut Criterion) {
    c.bench_function("multicore_8c_sequential", |b| {
        b.iter(|| run(ExecMode::Sequential));
    });
    for host_threads in [1usize, 2, 4, 8] {
        c.bench_function(
            &format!("multicore_8c_parallel_host_{host_threads}t"),
            |b| {
                b.iter(|| run(ExecMode::ParallelHost(host_threads)));
            },
        );
    }
}

criterion_group!(benches, bench_parallel_sim);
criterion_main!(benches);
