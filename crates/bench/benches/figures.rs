//! `cargo bench` target that regenerates every table and figure of the
//! paper into the bench log. Runs in quick mode by default so the full
//! bench suite finishes promptly; run the individual `src/bin` binaries
//! (without `VEGETA_QUICK`) for full-size layers.

fn main() {
    // Honour an explicitly-set VEGETA_QUICK; default to quick inside benches.
    if std::env::var("VEGETA_QUICK").is_err() {
        std::env::set_var("VEGETA_QUICK", "1");
    }
    // `cargo bench` passes flags like `--bench`; ignore them.
    println!("=== VEGETA evaluation reproduction (quick mode) ===\n");
    vegeta_bench::print_tab01();
    vegeta_bench::print_tab03();
    vegeta_bench::print_tab04();
    vegeta_bench::print_fig03();
    vegeta_bench::print_fig04();
    vegeta_bench::print_fig05();
    vegeta_bench::print_fig09();
    vegeta_bench::print_fig10();
    vegeta_bench::print_fig13();
    vegeta_bench::print_fig14();
    vegeta_bench::print_fig15();
    vegeta_bench::print_headline();
    vegeta_bench::print_kernel_ablation();
    vegeta_bench::print_of_ablation();
    vegeta_bench::print_rowwise_packing();
    vegeta_bench::print_dynamic_sparsity();
}
