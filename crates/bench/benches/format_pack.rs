//! Criterion microbenchmarks for the `TileFormat` storage API: compress,
//! zero-copy register-image packing, and `TileView` reads per format.
//!
//! `pack_into` and the view reads are the executor/kernel hot path the
//! `TileFormat` redesign de-allocated; these benches watch their throughput
//! per storage format.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use vegeta::num::{Bf16, Matrix};
use vegeta::sparse::{prune, FormatSpec, MregImage, NmRatio, TileView, TregImage};

/// A 16-row register-budget tile for each format: dense 16×32, N:M over
/// their effective widths, row-wise/CSR over 16×64 unstructured data.
fn operand_for(spec: FormatSpec, rng: &mut SmallRng) -> Matrix<Bf16> {
    match spec {
        FormatSpec::Dense => prune::random_dense(16, 32, rng),
        FormatSpec::Nm(ratio) => {
            let cols = 32 * ratio.m() as usize / ratio.n() as usize;
            prune::magnitude_prune_nm(&prune::random_dense(16, cols, rng), ratio)
        }
        // 8 rows at 1:4, 4 at 2:4, 4 dense: exactly the 512-value budget.
        FormatSpec::RowWise { .. } => {
            let d = prune::random_dense(16, 64, rng);
            let p14 = prune::magnitude_prune_nm(&d, NmRatio::S1_4);
            let p24 = prune::magnitude_prune_nm(&d, NmRatio::S2_4);
            Matrix::from_fn(16, 64, |r, c| match r % 4 {
                0 | 1 => p14[(r, c)],
                2 => p24[(r, c)],
                _ => d[(r, c)],
            })
        }
        // Sparse enough that the packed column indices fit the 128 B mreg.
        FormatSpec::Csr => prune::random_unstructured(16, 64, 0.9, rng),
    }
}

fn slug(spec: FormatSpec) -> String {
    spec.to_string().replace(':', "of")
}

fn bench_format_pack(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(42);
    for spec in FormatSpec::all_m4() {
        let dense = operand_for(spec, &mut rng);

        c.bench_function(&format!("format_compress_{}", slug(spec)), |b| {
            b.iter(|| spec.compress(&dense).unwrap());
        });

        let tile = spec.compress(&dense).unwrap();
        c.bench_function(&format!("format_pack_{}", slug(spec)), |b| {
            let (mut treg, mut mreg) = (TregImage::new(), MregImage::new());
            b.iter(|| tile.pack_into(&mut treg, &mut mreg).unwrap());
        });

        let (mut treg, mut mreg) = (TregImage::new(), MregImage::new());
        tile.pack_into(&mut treg, &mut mreg).unwrap();
        c.bench_function(&format!("format_view_decompress_{}", slug(spec)), |b| {
            b.iter(|| {
                let view =
                    TileView::of_images(spec, tile.rows(), tile.effective_cols(), &treg, &mreg)
                        .unwrap();
                view.decompress()
            });
        });

        // Raw in-place reads: sum every stored value through the view, the
        // access pattern of the executor's SPMM loops.
        c.bench_function(&format!("format_view_scan_{}", slug(spec)), |b| {
            let view = TileView::of_images(spec, tile.rows(), tile.effective_cols(), &treg, &mreg)
                .unwrap();
            let stored = view.stored_len();
            b.iter(|| {
                let mut acc = 0.0f32;
                for i in 0..stored {
                    acc += view.value(i).to_f32() * (view.position(i) as f32 + 1.0);
                }
                acc
            });
        });
    }
}

criterion_group!(benches, bench_format_pack);
criterion_main!(benches);
