//! Criterion throughput benchmarks for the event-driven simulator
//! rewrite: the [`EventQueue`] merge primitive on its own, the batched
//! `TileView` functional compute paths (GEMM and the 2:4/1:4 SPMM
//! decoders), and the production event-driven multi-core merge loop
//! against the retained stepped scan it replaced.
//!
//! All cycle outputs are asserted equal elsewhere
//! (`sim/tests/event_vs_stepped.rs`); these benches track the *speed*
//! side of the contract, in ops or instructions per iteration.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vegeta::isa::stream::InstStream;
use vegeta::kernels::KernelEmitter;
use vegeta::prelude::*;
use vegeta::sim::EventQueue;

/// Mid-size 2:4 layer: large enough to exercise every pipeline stage,
/// small enough for stable iterations.
fn bench_shape() -> GemmShape {
    GemmShape::new(128, 128, 512)
}

/// The event queue alone: the per-step cost the merge loop pays. One
/// iteration is 8 live cores rescheduled 1024 times each — the steady
/// state of `run_sharded` — so ns/iter ÷ 8192 is the per-event overhead.
fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_reschedule_8x1024", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(8);
            for core in 0..8usize {
                q.push(core as u64, core);
            }
            let mut live = 8 * 1024u32;
            let mut checksum = 0u64;
            while let Some((now, core)) = q.pop() {
                checksum ^= now.wrapping_mul(core as u64 + 1);
                live -= 1;
                if live >= 8 {
                    // Uneven strides keep the heap honestly reordering.
                    q.push(now + 3 + (core as u64 * 7) % 11, core);
                }
            }
            checksum
        });
    });
}

/// The batched functional compute paths: one iteration fully executes a
/// kernel's tile instructions (row-blocked predecoded GEMM/SPMM loops)
/// against architectural memory. Instructions per iteration is printed so
/// the rate is ops/sec, not just ns.
fn bench_batched_exec(c: &mut Criterion) {
    let shape = bench_shape();
    for (label, mode) in [
        ("dense", SparseMode::Dense),
        ("2of4", SparseMode::Nm2of4),
        ("1of4", SparseMode::Nm1of4),
    ] {
        let spec = KernelSpec::tiled(mode);
        let mem_bytes = KernelEmitter::for_spec(&spec, shape).footprint().end() as usize;
        let tile_insts = Executor::new(Memory::new(mem_bytes))
            .run_stream(spec.stream(shape))
            .expect("kernel executes cleanly");
        c.bench_function(&format!("exec_batched_{label}_{tile_insts}insts"), |b| {
            b.iter(|| {
                Executor::new(Memory::new(mem_bytes))
                    .run_stream(spec.stream(shape))
                    .expect("kernel executes cleanly")
            });
        });
    }
}

/// The two merge loops over the same 8-core LPT shard set: the
/// event-driven production path must beat (and never drift from) the
/// stepped linear-scan reference.
fn bench_merge_loops(c: &mut Criterion) {
    let shape = bench_shape();
    let spec = KernelSpec::tiled(SparseMode::Nm2of4);
    let engine = EngineConfig::vegeta_s(16)
        .expect("valid alpha")
        .with_output_forwarding(true);
    let cores = 8;
    c.bench_function("multicore_event_driven_8c", |b| {
        b.iter(|| {
            let set = spec.shard_set(shape, cores);
            MultiCoreSim::new(MultiCoreConfig::new(cores), engine.clone())
                .run_sharded(set.shards, set.reduction, SchedulerPolicy::Lpt)
                .core_cycles
        });
    });
    c.bench_function("multicore_stepped_scan_8c", |b| {
        b.iter(|| {
            let set = spec.shard_set(shape, cores);
            MultiCoreSim::new(MultiCoreConfig::new(cores), engine.clone())
                .run_sharded_stepped(set.shards, set.reduction, SchedulerPolicy::Lpt)
                .core_cycles
        });
    });
    // Single-core streamed replay: the end-to-end insts/sec number the
    // perf gate floors (geomean_sim_insts_per_sec).
    let insts = spec.stream(shape).remaining();
    c.bench_function(&format!("coresim_replay_{insts}insts"), |b| {
        b.iter(|| {
            CoreSim::with_engine(engine.clone())
                .run_stream(black_box(spec.stream(shape)))
                .core_cycles
        });
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_batched_exec,
    bench_merge_loops
);
criterion_main!(benches);
