//! Criterion microbenchmarks for the streaming instruction pipeline:
//! trace generation rate (ops emitted per second through `KernelStream`)
//! and end-to-end streamed replay rate (`CoreSim::run_stream`), against
//! the materialized build-then-replay baseline they replaced.

use criterion::{criterion_group, criterion_main, Criterion};
use vegeta::isa::stream::InstStream;
use vegeta::kernels::Kernel;
use vegeta::prelude::*;

/// A mid-size 2:4 layer: big enough that chunking matters, small enough
/// for a stable bench iteration.
fn bench_shape() -> GemmShape {
    GemmShape::new(128, 128, 1024)
}

fn bench_trace_stream(c: &mut Criterion) {
    let shape = bench_shape();
    let spec = KernelSpec::tiled(SparseMode::Nm2of4);

    // Pure generation: drain the lazy stream, counting ops.
    c.bench_function("trace_stream_generate", |b| {
        b.iter(|| {
            let mut stream = spec.stream(shape);
            let mut ops = 0u64;
            while stream.next_op().is_some() {
                ops += 1;
            }
            ops
        });
    });

    // The materialized baseline: build the whole Vec.
    c.bench_function("trace_stream_materialize", |b| {
        b.iter(|| spec.build(shape));
    });

    // End-to-end streamed replay (generation + simulation, no Vec).
    let engine = EngineConfig::vegeta_s(16).expect("valid alpha");
    c.bench_function("trace_stream_replay", |b| {
        b.iter(|| {
            CoreSim::with_engine(engine.clone())
                .run_stream(spec.stream(shape))
                .core_cycles
        });
    });

    // The legacy path: replay a prebuilt materialized trace.
    let trace = spec.build(shape);
    c.bench_function("trace_stream_replay_materialized", |b| {
        b.iter(|| CoreSim::with_engine(engine.clone()).run(&trace).core_cycles);
    });
}

criterion_group!(benches, bench_trace_stream);
criterion_main!(benches);
