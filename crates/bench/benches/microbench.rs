//! Criterion microbenchmarks of the core data structures and simulators.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use vegeta::engine::{dataflow, EngineConfig, EngineTimer};
use vegeta::kernels::{GemmShape, Kernel, KernelSpec, SparseMode, TraceCache};
use vegeta::num::Matrix;
use vegeta::prelude::Session;
use vegeta::sparse::{prune, CompressedTile, NmRatio, RowWiseTile};

fn bench_compression(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let tile_2of4 = prune::random_nm(16, 64, NmRatio::S2_4, &mut rng);
    let unstructured = prune::random_unstructured(16, 64, 0.9, &mut rng);
    c.bench_function("compress_2of4_tile_16x64", |b| {
        b.iter(|| CompressedTile::compress(&tile_2of4, NmRatio::S2_4).unwrap());
    });
    let compressed = CompressedTile::compress(&tile_2of4, NmRatio::S2_4).unwrap();
    c.bench_function("decompress_2of4_tile_16x64", |b| {
        b.iter(|| compressed.decompress());
    });
    c.bench_function("rowwise_cover_16x64", |b| {
        b.iter(|| RowWiseTile::compress(&unstructured, 4).unwrap());
    });
}

fn bench_dataflow(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(2);
    let eff = prune::random_nm(16, 64, NmRatio::S2_4, &mut rng);
    let tile = CompressedTile::compress(&eff, NmRatio::S2_4).unwrap();
    let meta: Vec<u8> = tile.indices().to_vec();
    let bt = prune::random_dense(16, 64, &mut rng);
    let c_in = Matrix::zeros(16, 16);
    let cfg = EngineConfig::vegeta_s(2).unwrap();
    c.bench_function("dataflow_spmm_u_s22", |b| {
        b.iter(|| {
            let op = dataflow::TileWiseOp {
                a_values: tile.values(),
                a_meta: Some(&meta),
                ratio: NmRatio::S2_4,
                bt: &bt,
                c_in: &c_in,
            };
            dataflow::simulate_tile(&cfg, &op).unwrap()
        });
    });
}

fn bench_engine_timer(c: &mut Criterion) {
    let cfg = EngineConfig::vegeta_s(16)
        .unwrap()
        .with_output_forwarding(true);
    c.bench_function("engine_timer_1k_issues", |b| {
        b.iter_batched(
            || EngineTimer::new(cfg.clone()),
            |mut timer| {
                for i in 0..1000u64 {
                    timer.issue((i % 2) as u8, 0);
                }
                timer.busy_until()
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_simulator(c: &mut Criterion) {
    let shape = GemmShape::new(64, 64, 512);
    let spec = KernelSpec::tiled(SparseMode::Nm2of4);
    let trace = spec.build(shape);
    let session = Session::new(EngineConfig::vegeta_s(16).unwrap());
    c.bench_function("core_sim_64x64x512_2of4", |b| {
        b.iter(|| session.run_trace("microbench", shape, &trace));
    });
    c.bench_function("trace_cache_hit_64x64x512_2of4", |b| {
        let cache = TraceCache::new();
        cache.get_or_build(shape, &spec);
        b.iter(|| cache.get_or_build(shape, &spec));
    });
}

criterion_group!(
    benches,
    bench_compression,
    bench_dataflow,
    bench_engine_timer,
    bench_simulator
);
criterion_main!(benches);
