//! The evaluation workloads of Table IV and their sparsity generators.
//!
//! The paper evaluates on representative DNN layers from ResNet50 (lowered
//! to GEMM via im2col), BERT, and GPT-3, with weights carrying
//! 4:4 / 2:4 / 1:4 structured sparsity or random unstructured sparsity of a
//! given degree. [`table4`] reproduces the layer dimensions and MAC counts
//! verbatim; [`WeightSparsity`] + [`generate_weights`] produce the seeded
//! synthetic weight matrices the experiments run on (the evaluation depends
//! only on dimensions and sparsity structure, not on trained values — see
//! DESIGN.md's substitution table).
//!
//! # Example
//!
//! ```
//! use vegeta_workloads::{table4, Network};
//!
//! let layers = table4();
//! assert_eq!(layers.len(), 12);
//! let gpt3 = layers.iter().filter(|l| l.network == Network::Gpt).count();
//! assert_eq!(gpt3, 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::Rng;
use vegeta_kernels::{ConvShape, GemmShape};
use vegeta_num::{Bf16, Matrix};
use vegeta_sparse::{prune, NmRatio};

/// The network a layer is drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Network {
    /// ResNet50 convolutional layers (im2col-lowered).
    ResNet50,
    /// BERT encoder GEMMs.
    Bert,
    /// GPT-3 GEMMs.
    Gpt,
}

/// How a layer's computation is specified in Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// A convolution, lowered to GEMM via im2col (§VI-B).
    Conv(ConvShape),
    /// A plain GEMM.
    Gemm(GemmShape),
}

/// One evaluation layer (a row of Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Layer {
    /// Table IV name, for example `"ResNet50-L2"`.
    pub name: &'static str,
    /// Source network.
    pub network: Network,
    /// Dimensions.
    pub kind: LayerKind,
}

impl Layer {
    /// The GEMM this layer executes (convolutions are im2col-lowered).
    pub fn gemm_shape(&self) -> GemmShape {
        match self.kind {
            LayerKind::Conv(c) => c.to_gemm(),
            LayerKind::Gemm(g) => g,
        }
    }

    /// Multiply-accumulate count (the Table IV "# of MACs" column).
    pub fn macs(&self) -> u64 {
        self.gemm_shape().macs()
    }

    /// The layer's GEMM scaled down by `factor` while keeping its aspect
    /// ratio — the proxy shape used by smoke tests and `VEGETA_QUICK=1`
    /// runs. A factor of 0 or 1 returns the exact full-size shape; larger
    /// factors divide every dimension, flooring at one output tile
    /// (`16×16`) and one dense `k` chunk (128).
    pub fn scaled_shape(&self, factor: usize) -> GemmShape {
        let s = self.gemm_shape();
        if factor <= 1 {
            return s;
        }
        GemmShape::new(
            (s.m / factor).max(16),
            (s.n / factor).max(16),
            (s.k / factor).max(128),
        )
    }
}

/// The twelve layers of Table IV, in table order.
pub fn table4() -> Vec<Layer> {
    vec![
        Layer {
            name: "ResNet50-L1",
            network: Network::ResNet50,
            kind: LayerKind::Conv(ConvShape {
                k: 64,
                c: 256,
                y: 56,
                x: 56,
                r: 1,
                s: 1,
            }),
        },
        Layer {
            name: "ResNet50-L2",
            network: Network::ResNet50,
            kind: LayerKind::Conv(ConvShape {
                k: 64,
                c: 64,
                y: 56,
                x: 56,
                r: 3,
                s: 3,
            }),
        },
        Layer {
            name: "ResNet50-L3",
            network: Network::ResNet50,
            kind: LayerKind::Conv(ConvShape {
                k: 256,
                c: 64,
                y: 56,
                x: 56,
                r: 1,
                s: 1,
            }),
        },
        Layer {
            name: "ResNet50-L4",
            network: Network::ResNet50,
            kind: LayerKind::Conv(ConvShape {
                k: 128,
                c: 128,
                y: 28,
                x: 28,
                r: 3,
                s: 3,
            }),
        },
        Layer {
            name: "ResNet50-L5",
            network: Network::ResNet50,
            kind: LayerKind::Conv(ConvShape {
                k: 512,
                c: 128,
                y: 28,
                x: 28,
                r: 1,
                s: 1,
            }),
        },
        Layer {
            name: "ResNet50-L6",
            network: Network::ResNet50,
            kind: LayerKind::Conv(ConvShape {
                k: 256,
                c: 256,
                y: 14,
                x: 14,
                r: 3,
                s: 3,
            }),
        },
        Layer {
            name: "BERT-L1",
            network: Network::Bert,
            kind: LayerKind::Gemm(GemmShape {
                m: 512,
                n: 768,
                k: 768,
            }),
        },
        Layer {
            name: "BERT-L2",
            network: Network::Bert,
            kind: LayerKind::Gemm(GemmShape {
                m: 512,
                n: 512,
                k: 768,
            }),
        },
        Layer {
            name: "BERT-L3",
            network: Network::Bert,
            kind: LayerKind::Gemm(GemmShape {
                m: 512,
                n: 768,
                k: 512,
            }),
        },
        Layer {
            name: "GPT-L1",
            network: Network::Gpt,
            kind: LayerKind::Gemm(GemmShape {
                m: 256,
                n: 256,
                k: 2048,
            }),
        },
        Layer {
            name: "GPT-L2",
            network: Network::Gpt,
            kind: LayerKind::Gemm(GemmShape {
                m: 512,
                n: 512,
                k: 2048,
            }),
        },
        Layer {
            name: "GPT-L3",
            network: Network::Gpt,
            kind: LayerKind::Gemm(GemmShape {
                m: 256,
                n: 256,
                k: 12_288,
            }),
        },
    ]
}

/// The Table IV layers belonging to one network, in order — a layer suite
/// for network-level experiments.
pub fn layers_of(network: Network) -> Vec<Layer> {
    table4()
        .into_iter()
        .filter(|l| l.network == network)
        .collect()
}

/// Weight sparsity configurations used across the evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightSparsity {
    /// Fully dense weights (the 4:4 configuration).
    Dense,
    /// Exact `N:M` structured sparsity from magnitude pruning.
    Structured(NmRatio),
    /// Random unstructured sparsity at the given degree (fraction of zeros).
    Unstructured(f64),
}

impl WeightSparsity {
    /// The structured pattern, if this configuration has one.
    pub fn ratio(&self) -> Option<NmRatio> {
        match self {
            WeightSparsity::Dense => Some(NmRatio::D4_4),
            WeightSparsity::Structured(r) => Some(*r),
            WeightSparsity::Unstructured(_) => None,
        }
    }
}

/// Generates a layer's weight matrix (`M×K` of its GEMM) with the requested
/// sparsity, deterministically from `rng`.
pub fn generate_weights<R: Rng + ?Sized>(
    layer: &Layer,
    sparsity: WeightSparsity,
    rng: &mut R,
) -> Matrix<Bf16> {
    let shape = layer.gemm_shape();
    match sparsity {
        WeightSparsity::Dense => prune::random_dense(shape.m, shape.k, rng),
        WeightSparsity::Structured(ratio) => {
            let padded_k = shape.k.next_multiple_of(ratio.m() as usize);
            let dense = prune::random_dense(shape.m, padded_k, rng);
            let pruned = prune::magnitude_prune_nm(&dense, ratio);
            // Trim back to the exact K (pruning needed whole blocks).
            Matrix::from_fn(shape.m, shape.k, |r, c| pruned[(r, c)])
        }
        WeightSparsity::Unstructured(degree) => {
            prune::random_unstructured(shape.m, shape.k, degree, rng)
        }
    }
}

/// Generates a layer's dense input matrix (`K×N` of its GEMM).
pub fn generate_inputs<R: Rng + ?Sized>(layer: &Layer, rng: &mut R) -> Matrix<Bf16> {
    let shape = layer.gemm_shape();
    prune::random_dense(shape.k, shape.n, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vegeta_sparse::{satisfies_nm, sparsity_degree};

    /// The MAC counts of Table IV, in order.
    const TABLE4_MACS: [u64; 12] = [
        51_380_224,
        115_605_504,
        51_380_224,
        115_605_504,
        51_380_224,
        115_605_504,
        301_989_888,
        201_326_592,
        201_326_592,
        134_217_728,
        536_870_912,
        805_306_368,
    ];

    #[test]
    fn mac_counts_match_table4_exactly() {
        for (layer, &expected) in table4().iter().zip(&TABLE4_MACS) {
            assert_eq!(layer.macs(), expected, "{}", layer.name);
        }
    }

    #[test]
    fn conv_layers_lower_to_expected_gemm_dims() {
        let layers = table4();
        // ResNet50-L2: M=64, N=3136, K=576.
        let g = layers[1].gemm_shape();
        assert_eq!((g.m, g.n, g.k), (64, 3136, 576));
        // BERT-L1 passes through unchanged.
        let g = layers[6].gemm_shape();
        assert_eq!((g.m, g.n, g.k), (512, 768, 768));
    }

    #[test]
    fn structured_weights_satisfy_their_pattern() {
        let mut rng = SmallRng::seed_from_u64(11);
        let layer = &table4()[7]; // BERT-L2
        for ratio in [NmRatio::S1_4, NmRatio::S2_4] {
            let w = generate_weights(layer, WeightSparsity::Structured(ratio), &mut rng);
            assert!(satisfies_nm(&w, ratio));
            let shape = layer.gemm_shape();
            assert_eq!((w.rows(), w.cols()), (shape.m, shape.k));
        }
    }

    #[test]
    fn unstructured_weights_hit_target_degree() {
        let mut rng = SmallRng::seed_from_u64(13);
        let layer = &table4()[9]; // GPT-L1
        let w = generate_weights(layer, WeightSparsity::Unstructured(0.95), &mut rng);
        let d = sparsity_degree(&w);
        assert!((d - 0.95).abs() < 0.01, "observed degree {d}");
    }

    #[test]
    fn networks_partition_the_table() {
        let layers = table4();
        assert_eq!(
            layers
                .iter()
                .filter(|l| l.network == Network::ResNet50)
                .count(),
            6
        );
        assert_eq!(
            layers.iter().filter(|l| l.network == Network::Bert).count(),
            3
        );
        assert_eq!(
            layers.iter().filter(|l| l.network == Network::Gpt).count(),
            3
        );
    }

    #[test]
    fn layers_of_selects_in_table_order() {
        let resnet = layers_of(Network::ResNet50);
        assert_eq!(resnet.len(), 6);
        assert_eq!(resnet[0].name, "ResNet50-L1");
        assert_eq!(resnet[5].name, "ResNet50-L6");
        assert_eq!(layers_of(Network::Gpt).len(), 3);
    }

    #[test]
    fn scaled_shape_is_exact_at_factor_one_and_floored_beyond() {
        for layer in table4() {
            assert_eq!(layer.scaled_shape(0), layer.gemm_shape());
            assert_eq!(layer.scaled_shape(1), layer.gemm_shape());
            let quick = layer.scaled_shape(4);
            assert!(quick.m >= 16 && quick.n >= 16 && quick.k >= 128);
            assert!(quick.macs() <= layer.macs());
        }
        // ResNet50-L3 lowers to k=64; scaling must floor k at 128.
        assert_eq!(table4()[2].scaled_shape(4).k, 128);
    }

    #[test]
    fn inputs_match_gemm_shape() {
        let mut rng = SmallRng::seed_from_u64(17);
        let layer = &table4()[0];
        let b = generate_inputs(layer, &mut rng);
        let shape = layer.gemm_shape();
        assert_eq!((b.rows(), b.cols()), (shape.k, shape.n));
    }
}
