//! Area / power / frequency model for VEGETA engines (Fig. 14).
//!
//! The paper synthesized RTL for every Table III design with Synopsys DC on
//! the Nangate 15 nm library and reported *relative* area and power
//! (normalized to RASA-SM) plus the maximum post-layout frequency. This
//! module substitutes a component-level analytical model: every structure a
//! design instantiates is costed with a per-unit coefficient, and the
//! coefficients are calibrated (see `DESIGN.md`) so the normalized numbers
//! reproduce the findings of §VI-D:
//!
//! * the largest VEGETA-S area overhead over RASA-SM is ~6% (VEGETA-S-1-2);
//! * increasing `α` amortizes the horizontal pipeline buffers until
//!   VEGETA-S-8-2 / VEGETA-S-16-2 are *smaller* than RASA-SM;
//! * power overhead of VEGETA-S-α-2 vs the baseline falls as
//!   17% / 8% / 4% / 3% / 1% for `α = 1 / 2 / 4 / 8 / 16`;
//! * maximum frequency falls monotonically with `α` (broadcast wire length),
//!   with every design meeting 0.5 GHz.

use vegeta_sparse::{FormatSpec, NmRatio};

use crate::config::{EngineConfig, EngineKind, TOTAL_MACS};

/// Per-structure cost coefficients (arbitrary area/power units, ns delays).
///
/// The defaults are the calibrated values; tests pin the resulting
/// normalized trends. Exposing the struct lets ablation studies ask
/// questions like "how big could the mux get before VEGETA-S-16-2 stops
/// being smaller than RASA-SM?".
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Area of one MAC unit (BF16 multiplier, FP32 adder, weight and psum
    /// registers).
    pub area_mac: f64,
    /// Area per buffered input element in a PE's horizontal pipeline buffer.
    pub area_input_buf: f64,
    /// Fixed per-PE overhead (control, valid bits, clocking).
    pub area_pe_overhead: f64,
    /// Area of one `M`-to-1 input mux (per MAC, sparse only), for `M = 4`.
    pub area_mux: f64,
    /// Area of one 2-bit metadata buffer entry (per MAC, sparse only).
    pub area_meta: f64,
    /// Area of one per-row input selector (sparse only).
    pub area_input_selector: f64,
    /// Area of one FP32 reduction adder at the bottom of the array.
    pub area_reduction_adder: f64,
    /// Power of one MAC unit.
    pub power_mac: f64,
    /// Power per buffered input element.
    pub power_input_buf: f64,
    /// Fixed per-PE power.
    pub power_pe_overhead: f64,
    /// Power of one input mux (high switching activity).
    pub power_mux: f64,
    /// Power of one metadata entry.
    pub power_meta: f64,
    /// Power of one input selector.
    pub power_input_selector: f64,
    /// Power of one reduction adder.
    pub power_reduction_adder: f64,
    /// Base critical path in ns (MAC + local wiring).
    pub delay_base_ns: f64,
    /// Added delay per unit of broadcast factor `α` (wire length across PUs).
    pub delay_per_alpha_ns: f64,
    /// Added delay for the sparse input mux in the operand path.
    pub delay_mux_ns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            area_mac: 100.0,
            area_input_buf: 2.0,
            area_pe_overhead: 1.7,
            area_mux: 0.7,
            area_meta: 0.2,
            area_input_selector: 2.0,
            area_reduction_adder: 3.5,
            power_mac: 100.0,
            power_input_buf: 4.3,
            power_pe_overhead: 2.0,
            power_mux: 5.0,
            power_meta: 0.5,
            power_input_selector: 10.0,
            power_reduction_adder: 12.8,
            delay_base_ns: 0.62,
            delay_per_alpha_ns: 0.055,
            delay_mux_ns: 0.03,
        }
    }
}

/// Evaluated cost of one engine design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostReport {
    /// Total area (model units).
    pub area: f64,
    /// Total power (model units).
    pub power: f64,
    /// Maximum clock frequency in GHz.
    pub frequency_ghz: f64,
}

impl CostModel {
    /// Creates the calibrated default model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluates a design point.
    pub fn evaluate(&self, cfg: &EngineConfig) -> CostReport {
        let pes = cfg.nrows() * cfg.ncols();
        let macs = TOTAL_MACS as f64;
        let input_elems = (pes * cfg.inputs_per_pe()) as f64;
        let pu_cols = cfg.pu_cols() as f64;
        let reduction_adders = pu_cols * (cfg.beta() as f64 - 1.0);
        let sparse = cfg.kind() == EngineKind::Sparse;
        let mux_scale = if sparse {
            (cfg.m() as f64 - 1.0) / 3.0
        } else {
            0.0
        };
        // Each MAC buffers the metadata its operand format carries per
        // stored value: the storage layer's N:M accounting for the engine's
        // block size, in units of the calibrated 2-bit (M = 4) entry.
        let meta_scale = if sparse {
            let ratio = NmRatio::new(1, cfg.m() as u8)
                .expect("EngineConfig validates M as a supported block size");
            f64::from(FormatSpec::Nm(ratio).metadata_bits_per_value()) / 2.0
        } else {
            0.0
        };

        let area = macs * self.area_mac
            + input_elems * self.area_input_buf
            + pes as f64 * self.area_pe_overhead
            + macs * self.area_mux * mux_scale
            + macs * self.area_meta * meta_scale
            + if sparse {
                cfg.nrows() as f64 * self.area_input_selector
            } else {
                0.0
            }
            + reduction_adders * self.area_reduction_adder;

        let power = macs * self.power_mac
            + input_elems * self.power_input_buf
            + pes as f64 * self.power_pe_overhead
            + macs * self.power_mux * mux_scale
            + macs * self.power_meta * meta_scale
            + if sparse {
                cfg.nrows() as f64 * self.power_input_selector
            } else {
                0.0
            }
            + reduction_adders * self.power_reduction_adder;

        let delay = self.delay_base_ns
            + self.delay_per_alpha_ns * cfg.alpha() as f64
            + if sparse { self.delay_mux_ns } else { 0.0 };
        let frequency_ghz = 1.0 / delay;

        CostReport {
            area,
            power,
            frequency_ghz,
        }
    }

    /// Area and power of `cfg` normalized to `baseline` (RASA-SM in Fig. 14).
    pub fn normalized(&self, cfg: &EngineConfig, baseline: &EngineConfig) -> (f64, f64) {
        let c = self.evaluate(cfg);
        let b = self.evaluate(baseline);
        (c.area / b.area, c.power / b.power)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn norm(cfg: &EngineConfig) -> (f64, f64) {
        CostModel::default().normalized(cfg, &EngineConfig::rasa_sm())
    }

    #[test]
    fn sparse_area_overhead_is_at_most_six_percent() {
        // §VI-D: "the VEGETA-S design with the largest area overhead
        // compared with RASA-SM only causes 6% area overhead".
        let worst = [1usize, 2, 4, 8, 16]
            .iter()
            .map(|&a| norm(&EngineConfig::vegeta_s(a).unwrap()).0)
            .fold(0.0f64, f64::max);
        assert!(worst <= 1.065, "worst sparse area ratio {worst}");
        assert!(worst > 1.0, "S-1-2 must cost something");
    }

    #[test]
    fn area_decreases_with_alpha() {
        let model = CostModel::default();
        let areas: Vec<f64> = [1usize, 2, 4, 8, 16]
            .iter()
            .map(|&a| model.evaluate(&EngineConfig::vegeta_s(a).unwrap()).area)
            .collect();
        for w in areas.windows(2) {
            assert!(w[1] < w[0], "area must fall as alpha grows: {areas:?}");
        }
    }

    #[test]
    fn high_alpha_sparse_designs_are_smaller_than_rasa_sm() {
        // §VI-D: "VEGETA-S-8-2 and VEGETA-S-16-2 show lower area compared to
        // RASA-SM".
        assert!(norm(&EngineConfig::vegeta_s(8).unwrap()).0 < 1.0);
        assert!(norm(&EngineConfig::vegeta_s(16).unwrap()).0 < 1.0);
    }

    #[test]
    fn power_overhead_sequence_matches_paper() {
        // §VI-D: power overheads of 17%, 8%, 4%, 3%, 1% for alpha = 1..16.
        let targets = [
            (1usize, 0.17),
            (2, 0.085),
            (4, 0.045),
            (8, 0.025),
            (16, 0.01),
        ];
        for (alpha, target) in targets {
            let (_, p) = norm(&EngineConfig::vegeta_s(alpha).unwrap());
            let overhead = p - 1.0;
            assert!(
                (overhead - target).abs() < 0.025,
                "alpha={alpha}: overhead {overhead:.3} vs target {target}"
            );
            assert!(overhead > 0.0, "sparse engines always pay some power");
        }
    }

    #[test]
    fn power_overhead_decreases_with_alpha() {
        let powers: Vec<f64> = [1usize, 2, 4, 8, 16]
            .iter()
            .map(|&a| norm(&EngineConfig::vegeta_s(a).unwrap()).1)
            .collect();
        for w in powers.windows(2) {
            assert!(
                w[1] < w[0],
                "power overhead must fall with alpha: {powers:?}"
            );
        }
    }

    #[test]
    fn frequency_falls_with_alpha_but_meets_half_ghz() {
        let model = CostModel::default();
        let mut last = f64::INFINITY;
        for cfg in EngineConfig::table3() {
            let f = model.evaluate(&cfg).frequency_ghz;
            assert!(
                f >= 0.5,
                "{} must meet the 0.5 GHz evaluation clock",
                cfg.name()
            );
            if cfg.name().starts_with("VEGETA-S") {
                assert!(f <= last, "frequency must fall with alpha");
                last = f;
            }
        }
    }

    #[test]
    fn sparse_engine_is_slightly_slower_than_dense_at_same_alpha() {
        let model = CostModel::default();
        let dense = model.evaluate(&EngineConfig::dense(1, 2)).frequency_ghz;
        let sparse = model
            .evaluate(&EngineConfig::vegeta_s(1).unwrap())
            .frequency_ghz;
        assert!(sparse < dense, "mux adds operand-path delay");
    }

    #[test]
    fn tmul_like_has_smallest_area_of_dense_designs() {
        // One PE column with wide PEs minimizes pipeline buffers.
        let model = CostModel::default();
        let d11 = model.evaluate(&EngineConfig::dense(1, 1)).area;
        let d161 = model.evaluate(&EngineConfig::tmul_like()).area;
        assert!(d161 < d11);
    }
}
