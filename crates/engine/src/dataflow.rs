//! Cycle-accurate dataflow simulation of the VEGETA systolic array
//! (Figs. 8, 9 and 11).
//!
//! The array is modelled at MAC granularity as `Nrows`-tall *MAC columns*
//! (512 MACs total). A weight row of the stationary `A` tile occupies
//! `lanes` adjacent MAC columns — `β` for the tile-wise instructions, `N_r`
//! per row for the row-wise mapping of §V-E — with stored value `k` of that
//! row held at array row `i = k / lanes`, lane `s = k mod lanes`. Inputs are
//! streamed skewed from the west (one new `C` column per cycle after Weight
//! Load), propagate one PE per cycle eastward, partial sums ripple south one
//! row per cycle, and each weight row's lanes are combined by a reduction
//! tree at the bottom of the array.
//!
//! The simulation fires every MAC in its exact cycle, so it yields both the
//! functional result (bit-checked against [`vegeta_isa::Executor`] in the
//! integration tests) and the timing/utilization counters behind Fig. 5 and
//! the Table III latency columns.

use vegeta_num::{mac_bf16, Bf16, Matrix};
use vegeta_sparse::NmRatio;

use crate::config::{log2_ceil, EngineConfig, EngineKind, INPUT_TILE_COLS};
use crate::EngineError;

/// A tile-wise operation for the dataflow simulator: the operands of one
/// `TILE_GEMM` / `TILE_SPMM_U` / `TILE_SPMM_V` instruction.
#[derive(Debug, Clone)]
pub struct TileWiseOp<'a> {
    /// Stored `A` values, 16×32 (row-major compressed layout).
    pub a_values: &'a Matrix<Bf16>,
    /// Per-value block positions (512 entries, row-major); `None` for a
    /// dense `A` where the stored position equals the effective position.
    pub a_meta: Option<&'a [u8]>,
    /// Sparsity pattern of `A` (`4:4` for `TILE_GEMM`).
    pub ratio: NmRatio,
    /// `Bᵀ`: 16 rows (output columns) × effective-K columns.
    pub bt: &'a Matrix<Bf16>,
    /// Input accumulator `C`, 16×16.
    pub c_in: &'a Matrix<f32>,
}

/// A row-wise operation (`TILE_SPMM_R`): per-row `N:4` weights (§V-E).
#[derive(Debug, Clone)]
pub struct RowWiseOp<'a> {
    /// Per weight row: `(n, values, positions)`; row `r` stores `16·n`
    /// values over 16 blocks of `M = 4`.
    pub rows: &'a [(u8, Vec<Bf16>, Vec<u8>)],
    /// `Bᵀ`: 16×64.
    pub bt: &'a Matrix<Bf16>,
    /// Input accumulator `C`: one 16-element row per weight row.
    pub c_in: &'a Matrix<f32>,
}

/// Result of a dataflow simulation.
#[derive(Debug, Clone)]
pub struct DataflowResult {
    /// Output tile (weight-rows × 16).
    pub c_out: Matrix<f32>,
    /// Cycle of the last output element, relative to instruction start.
    pub last_output_cycle: usize,
    /// MAC firings on a non-zero stored weight.
    pub effectual_macs: u64,
    /// Total MAC firings (effectual + firings on zero weights/padding).
    pub fired_macs: u64,
    /// MAC-cycles available while any input was in flight.
    pub mac_cycle_capacity: u64,
}

impl DataflowResult {
    /// Fraction of MAC firings that were effectual (Fig. 5's PE utilization
    /// when weights contain zeros).
    pub fn firing_utilization(&self) -> f64 {
        if self.fired_macs == 0 {
            return 0.0;
        }
        self.effectual_macs as f64 / self.fired_macs as f64
    }
}

/// Internal mapping of one weight row onto MAC columns.
struct RowMapping {
    /// Stored values (length `height · lanes`).
    values: Vec<Bf16>,
    /// Effective `Bᵀ` column index per stored value.
    positions: Vec<usize>,
    /// First MAC column of the row's group.
    base_col: usize,
    /// MAC columns occupied.
    lanes: usize,
}

#[allow(clippy::needless_range_loop)] // systolic index algebra is clearer with explicit indices
fn simulate(
    cfg: &EngineConfig,
    mappings: &[RowMapping],
    bt: &Matrix<Bf16>,
    c_in: &Matrix<f32>,
) -> DataflowResult {
    let height = cfg.nrows();
    let macs_per_pe = cfg.macs_per_pe();
    let toff = cfg.wl_latency();
    let tn = INPUT_TILE_COLS;

    // Partial sums per (weight row, lane, output column).
    let mut psums: Vec<Vec<Vec<f32>>> = mappings
        .iter()
        .map(|m| vec![vec![0.0f32; tn]; m.lanes])
        .collect();
    let mut effectual = 0u64;
    let mut fired = 0u64;

    // Last cycle any MAC can fire: row height-1, easternmost PE, last column.
    let max_pe_col = mappings
        .iter()
        .map(|m| (m.base_col + m.lanes - 1) / macs_per_pe)
        .max()
        .unwrap_or(0);
    let t_end = toff + (tn - 1) + (height - 1) + max_pe_col;

    for t in toff..=t_end {
        for (p, m) in mappings.iter().enumerate() {
            for s in 0..m.lanes {
                let mc = m.base_col + s;
                let pe_col = mc / macs_per_pe;
                for i in 0..height {
                    // The input wavefront for output column j reaches array
                    // row i of PE column pe_col at cycle toff + j + i + pe_col.
                    let Some(j) = t.checked_sub(toff + i + pe_col) else {
                        continue;
                    };
                    if j >= tn {
                        continue;
                    }
                    let k = i * m.lanes + s;
                    if k >= m.values.len() {
                        continue;
                    }
                    let w = m.values[k];
                    fired += 1;
                    if !w.is_zero() {
                        effectual += 1;
                    }
                    psums[p][s][j] = mac_bf16(psums[p][s][j], w, bt[(j, m.positions[k])]);
                }
            }
        }
    }

    // Bottom reduction: fold each row's lanes (tree order for beta = 2),
    // adding the north-fed C input on lane 0's stream.
    let mut c_out = Matrix::zeros(mappings.len(), tn);
    let mut last_output_cycle = 0;
    for (p, m) in mappings.iter().enumerate() {
        let pe_col_last = (m.base_col + m.lanes - 1) / macs_per_pe;
        let red_latency = log2_ceil(m.lanes) + 1;
        for j in 0..tn {
            let mut acc = c_in[(p, j)];
            for s in 0..m.lanes {
                acc += psums[p][s][j];
            }
            c_out[(p, j)] = acc;
            let out_t = toff + j + (height - 1) + pe_col_last + red_latency;
            last_output_cycle = last_output_cycle.max(out_t);
        }
    }

    let active_cycles = (t_end - toff + 1) as u64;
    DataflowResult {
        c_out,
        last_output_cycle,
        effectual_macs: effectual,
        fired_macs: fired,
        mac_cycle_capacity: active_cycles * crate::config::TOTAL_MACS as u64,
    }
}

/// Simulates one tile-wise instruction (`TILE_GEMM`/`TILE_SPMM_U`/`_V`) on
/// the engine, cycle by cycle.
///
/// # Errors
///
/// * [`EngineError::UnsupportedSparsity`] if the engine cannot execute the
///   operand pattern (a dense engine given 2:4, or the STC-like engine
///   given 1:4).
/// * [`EngineError::ShapeMismatch`] if operand shapes are inconsistent with
///   the pattern.
pub fn simulate_tile(
    cfg: &EngineConfig,
    op: &TileWiseOp<'_>,
) -> Result<DataflowResult, EngineError> {
    if !cfg.supports(op.ratio) {
        return Err(EngineError::UnsupportedSparsity {
            engine: cfg.name().to_string(),
            ratio: op.ratio,
        });
    }
    let n = op.ratio.n() as usize;
    let m = op.ratio.m() as usize;
    if op.a_values.rows() != 16 || op.a_values.cols() != 32 {
        return Err(EngineError::ShapeMismatch {
            reason: format!(
                "stored A must be 16x32, found {}x{}",
                op.a_values.rows(),
                op.a_values.cols()
            ),
        });
    }
    let eff_cols = 32 / n * m;
    if op.bt.rows() != 16 || op.bt.cols() != eff_cols {
        return Err(EngineError::ShapeMismatch {
            reason: format!(
                "Bt must be 16x{eff_cols} for {}, found {}x{}",
                op.ratio,
                op.bt.rows(),
                op.bt.cols()
            ),
        });
    }
    if let Some(meta) = op.a_meta {
        if meta.len() != 512 {
            return Err(EngineError::ShapeMismatch {
                reason: format!("metadata must have 512 entries, found {}", meta.len()),
            });
        }
    } else if !op.ratio.is_dense() {
        return Err(EngineError::ShapeMismatch {
            reason: format!("sparse ratio {} requires metadata", op.ratio),
        });
    }

    let lanes = 32 / cfg.nrows();
    let mappings: Vec<RowMapping> = (0..16)
        .map(|p| {
            let values = op.a_values.row(p).to_vec();
            let positions: Vec<usize> = (0..32)
                .map(|k| match op.a_meta {
                    Some(meta) => (k / n) * m + meta[p * 32 + k] as usize,
                    None => k,
                })
                .collect();
            RowMapping {
                values,
                positions,
                base_col: p * lanes,
                lanes,
            }
        })
        .collect();
    Ok(simulate(cfg, &mappings, op.bt, op.c_in))
}

/// Simulates one row-wise instruction (`TILE_SPMM_R`, Fig. 11): weight row
/// `r` with `N_r:4` sparsity occupies `N_r` MAC columns; all 32 MAC columns
/// are utilized when `Σ N_r = 32`.
///
/// # Errors
///
/// * [`EngineError::UnsupportedSparsity`] if the engine is dense or a row's
///   `N` is not a supported pattern.
/// * [`EngineError::ShapeMismatch`] if the rows overflow the array or the
///   operand shapes disagree.
pub fn simulate_row_wise(
    cfg: &EngineConfig,
    op: &RowWiseOp<'_>,
) -> Result<DataflowResult, EngineError> {
    if cfg.kind() != EngineKind::Sparse {
        return Err(EngineError::UnsupportedSparsity {
            engine: cfg.name().to_string(),
            ratio: NmRatio::S1_4,
        });
    }
    let total_lanes: usize = op.rows.iter().map(|(n, _, _)| *n as usize).sum();
    let avail = crate::config::TOTAL_MACS / cfg.nrows();
    if total_lanes > avail {
        return Err(EngineError::ShapeMismatch {
            reason: format!("row-wise tile needs {total_lanes} MAC columns, engine has {avail}"),
        });
    }
    if op.bt.rows() != 16 || op.bt.cols() != 64 {
        return Err(EngineError::ShapeMismatch {
            reason: format!("Bt must be 16x64, found {}x{}", op.bt.rows(), op.bt.cols()),
        });
    }
    if op.c_in.rows() < op.rows.len() {
        return Err(EngineError::ShapeMismatch {
            reason: format!(
                "C has {} rows for {} weight rows",
                op.c_in.rows(),
                op.rows.len()
            ),
        });
    }
    let m = cfg.m();
    let mut base_col = 0;
    let mut mappings = Vec::with_capacity(op.rows.len());
    for (n, values, positions) in op.rows {
        let n = *n as usize;
        if !n.is_power_of_two() || n > m {
            return Err(EngineError::UnsupportedSparsity {
                engine: cfg.name().to_string(),
                ratio: NmRatio::new(n as u8, m as u8).unwrap_or(NmRatio::D4_4),
            });
        }
        if values.len() != 16 * n || positions.len() != 16 * n {
            return Err(EngineError::ShapeMismatch {
                reason: format!(
                    "row with {n}:4 must store {} values, found {}",
                    16 * n,
                    values.len()
                ),
            });
        }
        let abs_positions: Vec<usize> = positions
            .iter()
            .enumerate()
            .map(|(k, &pos)| (k / n) * m + pos as usize)
            .collect();
        mappings.push(RowMapping {
            values: values.clone(),
            positions: abs_positions,
            base_col,
            lanes: n,
        });
        base_col += n;
    }
    Ok(simulate(cfg, &mappings, op.bt, op.c_in))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<Bf16> {
        Matrix::from_fn(rows, cols, |r, c| {
            let h = (r as u64)
                .wrapping_mul(37)
                .wrapping_add(c as u64)
                .wrapping_mul(seed | 1);
            Bf16::from_f32(((h % 13) as f32) - 6.0)
        })
    }

    fn reference_c(
        a_vals: &Matrix<Bf16>,
        positions: impl Fn(usize, usize) -> usize,
        bt: &Matrix<Bf16>,
        c_in: &Matrix<f32>,
    ) -> Matrix<f32> {
        Matrix::from_fn(16, 16, |p, j| {
            let mut acc = c_in[(p, j)];
            for k in 0..32 {
                acc += a_vals[(p, k)].to_f32() * bt[(j, positions(p, k))].to_f32();
            }
            acc
        })
    }

    #[test]
    fn dense_gemm_matches_reference_on_all_engines() {
        let a = int_matrix(16, 32, 3);
        let bt = int_matrix(16, 32, 5);
        let c_in = Matrix::from_fn(16, 16, |r, c| (r * 16 + c) as f32);
        let expected = reference_c(&a, |_, k| k, &bt, &c_in);
        for cfg in EngineConfig::table3() {
            let op = TileWiseOp {
                a_values: &a,
                a_meta: None,
                ratio: NmRatio::D4_4,
                bt: &bt,
                c_in: &c_in,
            };
            let res = simulate_tile(&cfg, &op).unwrap();
            assert_eq!(res.c_out, expected, "{}", cfg.name());
            assert_eq!(
                res.last_output_cycle,
                cfg.last_output_cycle(),
                "{}",
                cfg.name()
            );
        }
    }

    #[test]
    fn spmm_u_2_4_runs_full_utilization_on_sparse_engines() {
        // Exact 2:4: every stored value non-zero -> 100% firing utilization.
        let a = int_matrix(16, 32, 7).map(|v| if v.is_zero() { Bf16::ONE } else { *v });
        let meta: Vec<u8> = (0..512)
            .map(|k| ((k * 3) % 2 + (k % 2) * 2) as u8)
            .collect();
        // positions must be strictly increasing inside a block pair:
        let meta: Vec<u8> = meta.chunks(2).flat_map(|_| [0u8, 2u8]).collect();
        let bt = int_matrix(16, 64, 11);
        let c_in = Matrix::zeros(16, 16);
        let expected = reference_c(
            &a,
            |p, k| (k / 2) * 4 + meta[p * 32 + k] as usize,
            &bt,
            &c_in,
        );
        let cfg = EngineConfig::vegeta_s(2).unwrap();
        let op = TileWiseOp {
            a_values: &a,
            a_meta: Some(&meta),
            ratio: NmRatio::S2_4,
            bt: &bt,
            c_in: &c_in,
        };
        let res = simulate_tile(&cfg, &op).unwrap();
        assert_eq!(res.c_out, expected);
        assert_eq!(res.firing_utilization(), 1.0);
        assert_eq!(res.effectual_macs, 8192);
    }

    #[test]
    fn dense_engine_rejects_sparse_tiles() {
        let a = int_matrix(16, 32, 1);
        let meta = vec![0u8; 512];
        let bt = int_matrix(16, 64, 2);
        let c_in = Matrix::zeros(16, 16);
        let op = TileWiseOp {
            a_values: &a,
            a_meta: Some(&meta),
            ratio: NmRatio::S2_4,
            bt: &bt,
            c_in: &c_in,
        };
        let err = simulate_tile(&EngineConfig::rasa_dm(), &op).unwrap_err();
        assert!(matches!(err, EngineError::UnsupportedSparsity { .. }));
    }

    #[test]
    fn stc_like_rejects_1_4() {
        let a = int_matrix(16, 32, 1);
        let meta = vec![0u8; 512];
        let bt = int_matrix(16, 128, 2);
        let c_in = Matrix::zeros(16, 16);
        let op = TileWiseOp {
            a_values: &a,
            a_meta: Some(&meta),
            ratio: NmRatio::S1_4,
            bt: &bt,
            c_in: &c_in,
        };
        assert!(simulate_tile(&EngineConfig::stc_like(), &op).is_err());
        assert!(simulate_tile(&EngineConfig::vegeta_s(1).unwrap(), &op).is_ok());
    }

    #[test]
    fn figure5_dense_array_half_utilized_on_2_4_weights() {
        // A 2:4-sparse effective tile mapped in *dense* format on a dense
        // engine: half the weight slots are zero, so firing utilization is
        // 50% (Fig. 5 top).
        let a = Matrix::from_fn(
            16,
            32,
            |_, k| {
                if k % 4 < 2 {
                    Bf16::ONE
                } else {
                    Bf16::ZERO
                }
            },
        );
        let bt = int_matrix(16, 32, 9);
        let c_in = Matrix::zeros(16, 16);
        let op = TileWiseOp {
            a_values: &a,
            a_meta: None,
            ratio: NmRatio::D4_4,
            bt: &bt,
            c_in: &c_in,
        };
        let res = simulate_tile(&EngineConfig::rasa_dm(), &op).unwrap();
        assert!((res.firing_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn row_wise_mixed_rows_match_reference_and_fill_array() {
        // 4 rows of 4:4 + 4 rows of 2:4 + 8 rows of 1:4 = 32 MAC columns.
        let bt = int_matrix(16, 64, 13);
        let mut rows = Vec::new();
        let mut expected_rows = Vec::new();
        for r in 0..16usize {
            let n: usize = match r {
                0..=3 => 4,
                4..=7 => 2,
                _ => 1,
            };
            let values: Vec<Bf16> = (0..16 * n)
                .map(|k| Bf16::from_f32(((r * 31 + k) % 9) as f32 - 4.0))
                .collect();
            let positions: Vec<u8> = (0..16 * n)
                .map(|k| {
                    // strictly increasing within each block of n stored values
                    let slot = k % n;
                    (slot * (4 / n)) as u8
                })
                .collect();
            let mut exp = vec![0.0f32; 16];
            for (j, e) in exp.iter_mut().enumerate() {
                for k in 0..16 * n {
                    let pos = (k / n) * 4 + positions[k] as usize;
                    *e += values[k].to_f32() * bt[(j, pos)].to_f32();
                }
            }
            expected_rows.push(exp);
            rows.push((n as u8, values, positions));
        }
        let c_in = Matrix::zeros(16, 16);
        let cfg = EngineConfig::vegeta_s(2).unwrap();
        let res = simulate_row_wise(
            &cfg,
            &RowWiseOp {
                rows: &rows,
                bt: &bt,
                c_in: &c_in,
            },
        )
        .unwrap();
        for r in 0..16 {
            for j in 0..16 {
                assert_eq!(res.c_out[(r, j)], expected_rows[r][j], "({r},{j})");
            }
        }
        // All 32 MAC columns busy: effectual = 512 values x 16 cols.
        assert_eq!(res.fired_macs, 8192);
    }

    #[test]
    fn row_wise_rejects_overflow_and_dense_engines() {
        let bt = int_matrix(16, 64, 1);
        let c_in = Matrix::zeros(40, 16);
        let rows: Vec<(u8, Vec<Bf16>, Vec<u8>)> = (0..33)
            .map(|_| (1u8, vec![Bf16::ONE; 16], vec![0u8; 16]))
            .collect();
        let cfg = EngineConfig::vegeta_s(2).unwrap();
        assert!(simulate_row_wise(
            &cfg,
            &RowWiseOp {
                rows: &rows,
                bt: &bt,
                c_in: &c_in
            }
        )
        .is_err());
        let ok_rows = &rows[..32];
        assert!(simulate_row_wise(
            &cfg,
            &RowWiseOp {
                rows: ok_rows,
                bt: &bt,
                c_in: &c_in
            }
        )
        .is_ok());
        assert!(simulate_row_wise(
            &EngineConfig::rasa_dm(),
            &RowWiseOp {
                rows: ok_rows,
                bt: &bt,
                c_in: &c_in
            }
        )
        .is_err());
    }

    #[test]
    fn last_output_matches_latency_model_for_sparse_ops() {
        let a = int_matrix(16, 32, 17);
        let meta: Vec<u8> = (0..512).map(|_| 1u8).collect();
        let bt = int_matrix(16, 64, 19);
        let c_in = Matrix::zeros(16, 16);
        for alpha in [1usize, 2, 4, 8, 16] {
            let cfg = EngineConfig::vegeta_s(alpha).unwrap();
            let op = TileWiseOp {
                a_values: &a,
                a_meta: Some(&meta),
                ratio: NmRatio::S2_4,
                bt: &bt,
                c_in: &c_in,
            };
            let res = simulate_tile(&cfg, &op).unwrap();
            assert_eq!(
                res.last_output_cycle,
                cfg.last_output_cycle(),
                "{}",
                cfg.name()
            );
        }
    }
}
