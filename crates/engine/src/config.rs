//! VEGETA engine design points (Table III).
//!
//! An engine is a 2D array of `Nrows × Ncols` processing elements (PEs); a PE
//! groups `α` processing units (PUs) that share west-side inputs, and a PU
//! packs `β` MAC units working on different *lanes* of the same dot product
//! (§V-A). Sparse engines (VEGETA-S) add `M`-to-1 input muxes and metadata
//! buffers per MAC so zero weights are never mapped.
//!
//! Fixed across all Table III designs:
//!
//! * total MAC count = 512 (matching the 32×16 baseline array);
//! * effectual MACs per output element = 32, so `Nrows = 32 / β`;
//! * `Ncols = 512 / (Nrows · α · β)`.

use std::fmt;

use vegeta_sparse::NmRatio;

/// Total MAC units in every engine configuration (32×16 baseline).
pub const TOTAL_MACS: usize = 512;

/// Effectual MAC operations per output element for tile GEMM/SPMM (§V-B).
pub const MACS_PER_OUTPUT: usize = 32;

/// Columns of an input tile (`Tn`), which sets the Feed-First stage length.
pub const INPUT_TILE_COLS: usize = 16;

/// Whether the PEs are sparsity-aware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Dense PEs (DPEs): no zero skipping; runs `TILE_GEMM` only.
    Dense,
    /// Sparse PEs (SPEs): input-select muxes + metadata buffers; runs all
    /// tile GEMM/SPMM instructions.
    Sparse,
}

/// A VEGETA engine design point.
///
/// # Examples
///
/// ```
/// use vegeta_engine::EngineConfig;
///
/// let e = EngineConfig::vegeta_s(2).unwrap(); // VEGETA-S-2-2
/// assert_eq!((e.nrows(), e.ncols()), (16, 8));
/// assert_eq!(e.macs_per_pe(), 4);
/// assert_eq!(e.drain_latency(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EngineConfig {
    name: String,
    kind: EngineKind,
    alpha: usize,
    beta: usize,
    m: usize,
    output_forwarding: bool,
    /// Patterns the control logic accepts; `None` means every power-of-two
    /// `N:M` (used to model the STC-like design that only does 2:4).
    allowed: Option<Vec<NmRatio>>,
}

impl EngineConfig {
    /// Creates a design point. `alpha`/`beta` must divide the array into
    /// whole PEs: `beta | 32` and `alpha·beta | 512/(32/beta)`.
    ///
    /// # Panics
    ///
    /// Panics if the shape constraints do not hold (these are compile-time
    /// design decisions, not runtime data).
    fn new(name: impl Into<String>, kind: EngineKind, alpha: usize, beta: usize, m: usize) -> Self {
        assert!(
            beta > 0 && MACS_PER_OUTPUT.is_multiple_of(beta),
            "beta must divide 32"
        );
        let nrows = MACS_PER_OUTPUT / beta;
        assert!(
            alpha > 0 && TOTAL_MACS.is_multiple_of(nrows * alpha * beta),
            "alpha*beta must evenly tile the array"
        );
        if kind == EngineKind::Sparse {
            assert_eq!(beta, m / 2, "SPEs use beta = M/2 (§V-A)");
        }
        EngineConfig {
            name: name.into(),
            kind,
            alpha,
            beta,
            m,
            output_forwarding: false,
            allowed: None,
        }
    }

    /// A dense design `VEGETA-D-α-β`.
    pub fn dense(alpha: usize, beta: usize) -> Self {
        Self::new(
            format!("VEGETA-D-{alpha}-{beta}"),
            EngineKind::Dense,
            alpha,
            beta,
            4,
        )
    }

    /// A sparse design `VEGETA-S-α-2` for block size `M = 4` (`β = M/2`).
    ///
    /// # Errors
    ///
    /// Returns `None` if `alpha` is not in `{1, 2, 4, 8, 16}`.
    pub fn vegeta_s(alpha: usize) -> Option<Self> {
        if ![1, 2, 4, 8, 16].contains(&alpha) {
            return None;
        }
        Some(Self::new(
            format!("VEGETA-S-{alpha}-2"),
            EngineKind::Sparse,
            alpha,
            2,
            4,
        ))
    }

    /// The §V-D block-size extension: a sparse design for `M ∈ {8, 16}`
    /// with `β = M/2` (each MAC gets an `M`-to-1 mux; `Nrows = 32/β`).
    ///
    /// Returns `None` when the shape constraints cannot be met (`m` not a
    /// power of two in `[4, 16]`, or `alpha·beta` does not tile the array).
    pub fn vegeta_s_m(alpha: usize, m: usize) -> Option<Self> {
        if !(4..=16).contains(&m) || !m.is_power_of_two() {
            return None;
        }
        let beta = m / 2;
        let nrows = MACS_PER_OUTPUT.checked_div(beta)?;
        if !MACS_PER_OUTPUT.is_multiple_of(beta)
            || alpha == 0
            || !TOTAL_MACS.is_multiple_of(nrows * alpha * beta)
        {
            return None;
        }
        Some(Self::new(
            format!("VEGETA-S-{alpha}-{beta}-M{m}"),
            EngineKind::Sparse,
            alpha,
            beta,
            m,
        ))
    }

    /// The conventional single-MAC systolic array; models RASA-SM.
    pub fn rasa_sm() -> Self {
        let mut e = Self::dense(1, 1);
        e.name = "RASA-SM (VEGETA-D-1-1)".into();
        e
    }

    /// The state-of-the-art dense CPU matrix engine; models RASA-DM.
    pub fn rasa_dm() -> Self {
        let mut e = Self::dense(1, 2);
        e.name = "RASA-DM (VEGETA-D-1-2)".into();
        e
    }

    /// An Intel TMUL-inspired dense unit (VEGETA-D-16-1).
    pub fn tmul_like() -> Self {
        let mut e = Self::dense(16, 1);
        e.name = "TMUL-like (VEGETA-D-16-1)".into();
        e
    }

    /// An NVIDIA Sparse-Tensor-Core-like engine: VEGETA-S-1-2 with only 2:4
    /// (and dense 4:4) support forced (§VI-A).
    pub fn stc_like() -> Self {
        let mut e = Self::vegeta_s(1).expect("alpha=1 is valid");
        e.name = "STC-like (VEGETA-S-1-2, 2:4 only)".into();
        e.allowed = Some(vec![NmRatio::S2_4, NmRatio::D4_4]);
        e
    }

    /// All eight Table III design points, in table order.
    pub fn table3() -> Vec<EngineConfig> {
        vec![
            Self::dense(1, 1),
            Self::dense(1, 2),
            Self::dense(16, 1),
            Self::vegeta_s(1).expect("valid alpha"),
            Self::vegeta_s(2).expect("valid alpha"),
            Self::vegeta_s(4).expect("valid alpha"),
            Self::vegeta_s(8).expect("valid alpha"),
            Self::vegeta_s(16).expect("valid alpha"),
        ]
    }

    /// Enables or disables output forwarding (§V-C) and returns the config.
    ///
    /// The name gains (or loses) a `+OF` suffix so the two variants of a
    /// design point stay distinguishable — reports and sweep grids key
    /// engines by name.
    pub fn with_output_forwarding(mut self, enabled: bool) -> Self {
        self.output_forwarding = enabled;
        if enabled && !self.name.ends_with("+OF") {
            self.name.push_str("+OF");
        } else if !enabled && self.name.ends_with("+OF") {
            self.name.truncate(self.name.len() - 3);
        }
        self
    }

    /// Design-point name (for example `VEGETA-S-2-2`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dense or sparse PEs.
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// Broadcast factor `α`: PUs per PE.
    pub fn alpha(&self) -> usize {
        self.alpha
    }

    /// Reduction factor `β`: MACs (lanes) per PU.
    pub fn beta(&self) -> usize {
        self.beta
    }

    /// Structured-sparsity block size `M`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Whether output forwarding is enabled.
    pub fn output_forwarding(&self) -> bool {
        self.output_forwarding
    }

    /// Array height: `32 / β` PE rows.
    pub fn nrows(&self) -> usize {
        MACS_PER_OUTPUT / self.beta
    }

    /// Array width in PEs: `512 / (Nrows · α · β)`.
    pub fn ncols(&self) -> usize {
        TOTAL_MACS / (self.nrows() * self.alpha * self.beta)
    }

    /// MAC units per PE (`α·β`).
    pub fn macs_per_pe(&self) -> usize {
        self.alpha * self.beta
    }

    /// Input elements fed to each PE per cycle: `β` elements for dense PEs,
    /// `β` blocks of `M` elements for sparse PEs.
    pub fn inputs_per_pe(&self) -> usize {
        match self.kind {
            EngineKind::Dense => self.beta,
            EngineKind::Sparse => self.beta * self.m,
        }
    }

    /// PU columns across the array (`Ncols · α`); one per output row of the
    /// weight tile, 16 for every Table III design.
    pub fn pu_cols(&self) -> usize {
        self.ncols() * self.alpha
    }

    /// Cycles of the Weight Load stage (`Nrows`).
    pub fn wl_latency(&self) -> usize {
        self.nrows()
    }

    /// Cycles of the Feed-First stage (`Tn`, input tile columns).
    pub fn ff_latency(&self) -> usize {
        INPUT_TILE_COLS
    }

    /// Cycles of the Feed-Second stage (`Nrows − 1`).
    pub fn fs_latency(&self) -> usize {
        self.nrows() - 1
    }

    /// Cycles of the Drain stage.
    ///
    /// The array needs `Ncols` cycles to flush horizontally, and the bottom
    /// reduction tree needs `⌈log₂β⌉ + 1` cycles to produce its last result;
    /// the drain stage ends when both have (`max` of the two). This single
    /// rule reproduces the entire Table III drain column, including the
    /// 2-cycle drain of VEGETA-S-16-2 whose `Ncols` is only 1.
    pub fn drain_latency(&self) -> usize {
        let reduction = log2_ceil(self.beta) + 1;
        self.ncols().max(if self.beta > 1 { reduction } else { 1 })
    }

    /// Total latency of one tile instruction: WL + FF + FS + DR.
    pub fn instruction_latency(&self) -> usize {
        self.wl_latency() + self.ff_latency() + self.fs_latency() + self.drain_latency()
    }

    /// Minimum cycles between the starts of two pipelined instructions with
    /// no data dependence: no two instructions may occupy the same stage
    /// (§V-C), so the gap is the longest stage.
    pub fn issue_interval(&self) -> usize {
        self.wl_latency()
            .max(self.ff_latency())
            .max(self.fs_latency())
            .max(self.drain_latency())
    }

    /// Cycle (relative to instruction start) at which the first `C` element
    /// is written back: the first C element is fed when FF begins and every
    /// output is produced `Nrows + log₂β` cycles after it is fed (§V-C).
    pub fn first_writeback(&self) -> usize {
        self.wl_latency() + self.nrows() + log2_ceil(self.beta)
    }

    /// Cycle (relative to start) of the very last output element leaving the
    /// reduction units, as observed by the dataflow simulation.
    pub fn last_output_cycle(&self) -> usize {
        // Last C column enters at WL + Tn - 1, crosses Nrows PE rows, drifts
        // Ncols - 1 PEs east, then the reduction tree adds ⌈log₂β⌉ + 1.
        self.wl_latency()
            + (self.ff_latency() - 1)
            + (self.nrows() - 1)
            + (self.ncols() - 1)
            + log2_ceil(self.beta)
            + 1
    }

    /// Whether this engine can execute a tile operation whose `A` operand has
    /// the given sparsity pattern.
    pub fn supports(&self, ratio: NmRatio) -> bool {
        if let Some(allowed) = &self.allowed {
            return allowed.contains(&ratio);
        }
        match self.kind {
            EngineKind::Dense => ratio.is_dense(),
            EngineKind::Sparse => ratio.m() as usize == self.m && ratio.n().is_power_of_two(),
        }
    }

    /// The pattern this engine *executes* for weights carrying the given
    /// `N:M` pattern: the sparsest supported pattern that still covers the
    /// weights, falling back to dense (§VI-C).
    ///
    /// A dense engine always executes dense; the STC-like engine executes
    /// 1:4 weights with its 2:4 path, gaining nothing from the extra zeros.
    ///
    /// # Example
    ///
    /// ```
    /// use vegeta_engine::EngineConfig;
    /// use vegeta_sparse::NmRatio;
    ///
    /// let stc = EngineConfig::stc_like();
    /// assert_eq!(stc.execution_pattern(NmRatio::S1_4), NmRatio::S2_4);
    /// assert_eq!(
    ///     EngineConfig::rasa_dm().execution_pattern(NmRatio::S1_4),
    ///     NmRatio::D4_4
    /// );
    /// ```
    pub fn execution_pattern(&self, weights: NmRatio) -> NmRatio {
        self.supported_patterns()
            .into_iter()
            .filter(|p| p.n() >= weights.n() && p.m() == weights.m())
            .min()
            .unwrap_or(NmRatio::D4_4)
    }

    /// The sparsity patterns this engine accepts, densest last.
    pub fn supported_patterns(&self) -> Vec<NmRatio> {
        if let Some(allowed) = &self.allowed {
            let mut v = allowed.clone();
            v.sort();
            return v;
        }
        match self.kind {
            EngineKind::Dense => vec![NmRatio::D4_4],
            EngineKind::Sparse => {
                NmRatio::supported_patterns(self.m as u8).expect("m validated at construction")
            }
        }
    }
}

impl fmt::Display for EngineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// `⌈log₂ x⌉` for `x ≥ 1`.
pub(crate) fn log2_ceil(x: usize) -> usize {
    debug_assert!(x >= 1);
    usize::BITS as usize - (x - 1).leading_zeros() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The literal rows of Table III.
    const TABLE3: [(&str, usize, usize, usize, usize, usize, usize); 8] = [
        // name, nrows, ncols, macs/PE, inputs/PE, alpha, drain
        ("VEGETA-D-1-1", 32, 16, 1, 1, 1, 16),
        ("VEGETA-D-1-2", 16, 16, 2, 2, 1, 16),
        ("VEGETA-D-16-1", 32, 1, 16, 1, 16, 1),
        ("VEGETA-S-1-2", 16, 16, 2, 8, 1, 16),
        ("VEGETA-S-2-2", 16, 8, 4, 8, 2, 8),
        ("VEGETA-S-4-2", 16, 4, 8, 8, 4, 4),
        ("VEGETA-S-8-2", 16, 2, 16, 8, 8, 2),
        ("VEGETA-S-16-2", 16, 1, 32, 8, 16, 2),
    ];

    #[test]
    fn table3_rows_are_reproduced_exactly() {
        for (cfg, row) in EngineConfig::table3().iter().zip(TABLE3) {
            assert_eq!(cfg.name(), row.0);
            assert_eq!(cfg.nrows(), row.1, "{}", row.0);
            assert_eq!(cfg.ncols(), row.2, "{}", row.0);
            assert_eq!(cfg.macs_per_pe(), row.3, "{}", row.0);
            assert_eq!(cfg.inputs_per_pe(), row.4, "{}", row.0);
            assert_eq!(cfg.alpha(), row.5, "{}", row.0);
            assert_eq!(cfg.drain_latency(), row.6, "{}", row.0);
        }
    }

    #[test]
    fn every_design_has_512_macs_and_16_pu_cols() {
        for cfg in EngineConfig::table3() {
            assert_eq!(cfg.nrows() * cfg.ncols() * cfg.macs_per_pe(), TOTAL_MACS);
            assert_eq!(cfg.pu_cols() * cfg.nrows() * cfg.beta(), TOTAL_MACS);
            assert_eq!(
                cfg.pu_cols(),
                16,
                "{}: one PU column per output row",
                cfg.name()
            );
        }
    }

    #[test]
    fn issue_interval_is_16_for_dm_and_s16() {
        // §V-C: "the next instruction can be executed after 16 cycles for
        // VEGETA-S-16-2, which is same as VEGETA-D-1-2".
        assert_eq!(EngineConfig::rasa_dm().issue_interval(), 16);
        assert_eq!(EngineConfig::vegeta_s(16).unwrap().issue_interval(), 16);
        // RASA-SM is limited by its 32-cycle weight load.
        assert_eq!(EngineConfig::rasa_sm().issue_interval(), 32);
    }

    #[test]
    fn sparse_latency_shorter_than_dense_dm() {
        // §V-C: "due to the smaller Nrows and Ncols, the latency of each
        // instruction for VEGETA-S-16-2 is shorter than VEGETA-D-1-2".
        let dm = EngineConfig::rasa_dm().instruction_latency();
        let s16 = EngineConfig::vegeta_s(16).unwrap().instruction_latency();
        assert!(s16 < dm, "S-16-2 {s16} vs D-1-2 {dm}");
    }

    #[test]
    fn sparsity_support_matrix() {
        let dense = EngineConfig::rasa_dm();
        assert!(dense.supports(NmRatio::D4_4));
        assert!(!dense.supports(NmRatio::S2_4));
        let s = EngineConfig::vegeta_s(2).unwrap();
        assert!(s.supports(NmRatio::D4_4));
        assert!(s.supports(NmRatio::S2_4));
        assert!(s.supports(NmRatio::S1_4));
        let stc = EngineConfig::stc_like();
        assert!(stc.supports(NmRatio::S2_4));
        assert!(
            !stc.supports(NmRatio::S1_4),
            "STC cannot exploit 1:4 (§VI-C)"
        );
        assert!(stc.supports(NmRatio::D4_4));
    }

    #[test]
    fn first_writeback_matches_section5c() {
        // "the C tile will be written back from Cycle 2·Nrows + log2(beta)".
        let s16 = EngineConfig::vegeta_s(16).unwrap();
        assert_eq!(s16.first_writeback(), 2 * 16 + 1);
    }

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(16), 4);
    }

    #[test]
    #[should_panic(expected = "beta = M/2")]
    fn sparse_engine_requires_beta_m_over_2() {
        let _ = EngineConfig::new("bad", EngineKind::Sparse, 1, 1, 4);
    }

    #[test]
    fn output_forwarding_toggle() {
        let e = EngineConfig::vegeta_s(16)
            .unwrap()
            .with_output_forwarding(true);
        assert!(e.output_forwarding());
        assert_eq!(
            e.name(),
            "VEGETA-S-16-2+OF",
            "OF variants must be distinguishable by name"
        );
        let back = e.with_output_forwarding(false);
        assert_eq!(back.name(), "VEGETA-S-16-2");
        // Idempotent: enabling twice must not stack suffixes.
        let twice = EngineConfig::vegeta_s(16)
            .unwrap()
            .with_output_forwarding(true)
            .with_output_forwarding(true);
        assert_eq!(twice.name(), "VEGETA-S-16-2+OF");
    }

    #[test]
    fn block_size_extension_m8_and_m16() {
        // §V-D: larger M with beta = M/2; the array keeps 512 MACs.
        let m8 = EngineConfig::vegeta_s_m(2, 8).unwrap();
        assert_eq!((m8.nrows(), m8.beta(), m8.m()), (8, 4, 8));
        assert_eq!(m8.nrows() * m8.ncols() * m8.macs_per_pe(), TOTAL_MACS);
        assert!(m8.supports(NmRatio::new(2, 8).unwrap()));
        assert!(!m8.supports(NmRatio::S2_4), "block size must match");
        let m16 = EngineConfig::vegeta_s_m(1, 16).unwrap();
        assert_eq!((m16.nrows(), m16.beta()), (4, 8));
        assert_eq!(m16.supported_patterns().len(), 5); // 1,2,4,8,16 : 16
        assert!(EngineConfig::vegeta_s_m(1, 6).is_none());
        assert!(EngineConfig::vegeta_s_m(0, 8).is_none());
    }

    #[test]
    fn m8_engine_issue_interval_still_16() {
        // Tn = 16 dominates once Nrows shrinks below it.
        let m8 = EngineConfig::vegeta_s_m(2, 8).unwrap();
        assert_eq!(m8.issue_interval(), 16);
    }
}
