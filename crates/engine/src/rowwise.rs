//! Packing row-wise `N:M` matrices into `TILE_SPMM_R` instructions (§V-E).
//!
//! One `TILE_SPMM_R` processes up to 32 MAC columns' worth of weight rows:
//! a row with `N_r:4` sparsity occupies `N_r` MAC columns, so a single
//! instruction covers `R` rows with `Σ N_r ≤ 32` (and `R ≤ 32`, the height
//! of the `C` ureg). Denser mixes pack fewer rows (`R = 8` when all rows are
//! 4:4), sparser mixes pack more (`R = 32` at 1:4) — the paper's
//! "`H_A` can vary from 8 to 32".

use vegeta_sparse::NmRatio;

/// MAC columns available to one `TILE_SPMM_R` (512 MACs / 16 rows).
pub const LANES_PER_TILE: usize = 32;

/// Maximum weight rows per `TILE_SPMM_R` (C ureg height).
pub const MAX_ROWS_PER_TILE: usize = 32;

/// Rows assigned to one `TILE_SPMM_R` instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileAssignment {
    /// Indices of the weight rows covered (into the caller's row list).
    pub rows: Vec<usize>,
    /// MAC columns used (`Σ N_r`); 32 means full utilization.
    pub lanes_used: usize,
}

impl TileAssignment {
    /// Fraction of the array's MAC columns this instruction keeps busy.
    pub fn utilization(&self) -> f64 {
        self.lanes_used as f64 / LANES_PER_TILE as f64
    }
}

/// Greedily packs rows (in order) into `TILE_SPMM_R` instructions.
///
/// Rows are taken first-fit in their stored order — the order produced by
/// the DMA reordering of §V-E when the caller wants optimal packing, or the
/// original order for pseudo row-wise execution.
pub fn pack_rows(row_ratios: &[NmRatio]) -> Vec<TileAssignment> {
    let mut tiles = Vec::new();
    let mut current = TileAssignment {
        rows: Vec::new(),
        lanes_used: 0,
    };
    for (idx, ratio) in row_ratios.iter().enumerate() {
        let lanes = ratio.n() as usize;
        let overflow =
            current.lanes_used + lanes > LANES_PER_TILE || current.rows.len() >= MAX_ROWS_PER_TILE;
        if overflow && !current.rows.is_empty() {
            tiles.push(std::mem::replace(
                &mut current,
                TileAssignment {
                    rows: Vec::new(),
                    lanes_used: 0,
                },
            ));
        }
        current.rows.push(idx);
        current.lanes_used += lanes;
    }
    if !current.rows.is_empty() {
        tiles.push(current);
    }
    tiles
}

/// Summary statistics of a row-wise packing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PackingStats {
    /// Number of `TILE_SPMM_R` instructions.
    pub instructions: usize,
    /// Mean MAC-column utilization across instructions.
    pub mean_utilization: f64,
    /// Total weight rows covered.
    pub rows: usize,
}

/// Computes summary statistics for a packing.
pub fn packing_stats(tiles: &[TileAssignment]) -> PackingStats {
    let instructions = tiles.len();
    let rows = tiles.iter().map(|t| t.rows.len()).sum();
    let mean_utilization = if instructions == 0 {
        0.0
    } else {
        tiles.iter().map(TileAssignment::utilization).sum::<f64>() / instructions as f64
    };
    PackingStats {
        instructions,
        mean_utilization,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_dense_rows_pack_eight_per_tile() {
        let rows = vec![NmRatio::D4_4; 24];
        let tiles = pack_rows(&rows);
        assert_eq!(tiles.len(), 3);
        assert!(tiles
            .iter()
            .all(|t| t.rows.len() == 8 && t.lanes_used == 32));
    }

    #[test]
    fn all_1_4_rows_pack_thirty_two_per_tile() {
        let rows = vec![NmRatio::S1_4; 64];
        let tiles = pack_rows(&rows);
        assert_eq!(tiles.len(), 2);
        assert!(tiles
            .iter()
            .all(|t| t.rows.len() == 32 && t.lanes_used == 32));
    }

    #[test]
    fn mixed_rows_respect_lane_budget() {
        // 4x4:4 (16 lanes) + 4x2:4 (8) + 8x1:4 (8) = 32 lanes in one tile.
        let mut rows = vec![NmRatio::D4_4; 4];
        rows.extend(vec![NmRatio::S2_4; 4]);
        rows.extend(vec![NmRatio::S1_4; 8]);
        let tiles = pack_rows(&rows);
        assert_eq!(tiles.len(), 1);
        assert_eq!(tiles[0].lanes_used, 32);
        assert_eq!(tiles[0].rows.len(), 16);
        assert_eq!(tiles[0].utilization(), 1.0);
    }

    #[test]
    fn overflow_starts_a_new_tile() {
        // 7 dense rows (28 lanes) then a 2:4 row fits (30); another dense
        // row would need 34 -> next tile.
        let mut rows = vec![NmRatio::D4_4; 7];
        rows.push(NmRatio::S2_4);
        rows.push(NmRatio::D4_4);
        let tiles = pack_rows(&rows);
        assert_eq!(tiles.len(), 2);
        assert_eq!(tiles[0].lanes_used, 30);
        assert_eq!(tiles[1].lanes_used, 4);
    }

    #[test]
    fn row_cap_limits_tiles_even_with_spare_lanes() {
        // 40 rows at 1:4: first tile takes 32 rows (32 lanes), second 8.
        let rows = vec![NmRatio::S1_4; 40];
        let tiles = pack_rows(&rows);
        assert_eq!(tiles.len(), 2);
        assert_eq!(tiles[0].rows.len(), 32);
        assert_eq!(tiles[1].rows.len(), 8);
    }

    #[test]
    fn stats_summarize_packing() {
        let rows = vec![NmRatio::S1_4; 48];
        let tiles = pack_rows(&rows);
        let stats = packing_stats(&tiles);
        assert_eq!(stats.instructions, 2);
        assert_eq!(stats.rows, 48);
        assert!((stats.mean_utilization - 0.75).abs() < 1e-12); // 32/32 and 16/32
    }

    #[test]
    fn empty_input_gives_empty_packing() {
        assert!(pack_rows(&[]).is_empty());
        let stats = packing_stats(&[]);
        assert_eq!(stats.instructions, 0);
        assert_eq!(stats.mean_utilization, 0.0);
    }
}
