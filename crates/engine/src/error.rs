//! Error type for engine-level operations.

use std::error::Error;
use std::fmt;

use vegeta_sparse::NmRatio;

/// Errors produced by the engine simulators and models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EngineError {
    /// The engine's control logic cannot execute an operand with this
    /// sparsity pattern (dense engines reject all SPMM; the STC-like design
    /// rejects 1:4).
    UnsupportedSparsity {
        /// Engine design-point name.
        engine: String,
        /// The rejected pattern.
        ratio: NmRatio,
    },
    /// Operand shapes are inconsistent with the instruction or the array.
    ShapeMismatch {
        /// Human-readable description of the violation.
        reason: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnsupportedSparsity { engine, ratio } => {
                write!(f, "{engine} does not support {ratio} sparsity")
            }
            EngineError::ShapeMismatch { reason } => write!(f, "shape mismatch: {reason}"),
        }
    }
}

impl Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EngineError::UnsupportedSparsity {
            engine: "RASA-DM".to_string(),
            ratio: NmRatio::S2_4,
        };
        assert_eq!(e.to_string(), "RASA-DM does not support 2:4 sparsity");
    }
}
