//! The VEGETA matrix engine microarchitecture (§V).
//!
//! This crate models the paper's systolic-array matrix engine at three
//! levels, all driven by the same [`EngineConfig`] design points of
//! Table III:
//!
//! * [`dataflow`] — a cycle-accurate simulation of the PE array executing a
//!   single tile instruction (Figs. 8, 9 and 11): skewed input streaming,
//!   metadata-driven input selection in SPEs, spatio-temporal reduction and
//!   the bottom adder trees. It produces both the functional result and
//!   per-cycle utilization counters.
//! * [`pipeline`] — the WL/FF/FS/DR stage-level timing model (Fig. 10) with
//!   structural-hazard scheduling and output forwarding, used by the CPU
//!   simulator to cost every tile instruction.
//! * [`cost`] — the component-level area/power/frequency model standing in
//!   for the paper's RTL synthesis flow (Fig. 14).
//!
//! [`rowwise`] adds the §V-E bookkeeping that packs row-wise `N:M` matrices
//! into `TILE_SPMM_R` instructions.
//!
//! # Example
//!
//! ```
//! use vegeta_engine::{EngineConfig, EngineTimer};
//!
//! // Compare RASA-DM with VEGETA-S-16-2 on a chain of dependent tile ops.
//! for cfg in [EngineConfig::rasa_dm(), EngineConfig::vegeta_s(16).unwrap()] {
//!     let mut timer = EngineTimer::new(cfg.clone().with_output_forwarding(true));
//!     let mut completion = 0;
//!     for _ in 0..8 {
//!         completion = timer.issue(0, 0).completion;
//!     }
//!     assert!(completion > 0);
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod cost;
pub mod dataflow;
mod error;
pub mod pipeline;
pub mod rowwise;

pub use config::{EngineConfig, EngineKind, INPUT_TILE_COLS, MACS_PER_OUTPUT, TOTAL_MACS};
pub use cost::{CostModel, CostReport};
pub use dataflow::{simulate_row_wise, simulate_tile, DataflowResult, RowWiseOp, TileWiseOp};
pub use error::EngineError;
pub use pipeline::{schedule_sequence, AccId, EngineTimer, InstTiming, TileOp};
