//! Pipelined execution of tile instructions on a VEGETA engine (§V-C,
//! Fig. 10).
//!
//! Execution of one tile GEMM/SPMM is split into four stages:
//!
//! * **WL** (Weight Load) — `Nrows` cycles of loading stationary weights;
//! * **FF** (Feed First) — `Tn` cycles while the top-left PE receives inputs;
//! * **FS** (Feed Second) — `Nrows − 1` cycles of skewed residual feeding;
//! * **DR** (Drain) — flush plus bottom reduction.
//!
//! Independent instructions overlap as long as no two occupy the same stage,
//! which bounds the issue interval by the longest stage
//! ([`EngineConfig::issue_interval`]). Dependent instructions (accumulating
//! into the same `C` register) stall until the producer has written `C` back
//! — unless **output forwarding** (OF) is enabled, in which case the consumer
//! may trail the producer by `Nrows + ⌈log₂β⌉` cycles, because `C` elements
//! are read and written in the same order at one element per column per cycle.

use crate::config::{log2_ceil, EngineConfig};

/// Identifier of the accumulator register a tile instruction accumulates
/// into (treg/ureg index at treg granularity).
pub type AccId = u8;

/// Timing of one scheduled tile instruction, in engine cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstTiming {
    /// Cycle the instruction enters the WL stage.
    pub start: u64,
    /// Cycle the instruction's last result is architecturally visible.
    pub completion: u64,
}

/// Incremental scheduler for the matrix engine's structural and data
/// hazards. The CPU simulator drives one of these per engine.
///
/// # Examples
///
/// ```
/// use vegeta_engine::{EngineConfig, EngineTimer};
///
/// let cfg = EngineConfig::vegeta_s(16).unwrap().with_output_forwarding(true);
/// let mut timer = EngineTimer::new(cfg);
/// let first = timer.issue(2, 0);
/// let second = timer.issue(2, 0); // accumulates into the same treg
/// // With OF the dependent instruction trails by Nrows + log2(beta) = 17.
/// assert_eq!(second.start - first.start, 17);
/// ```
#[derive(Debug, Clone)]
pub struct EngineTimer {
    cfg: EngineConfig,
    last_start: Option<u64>,
    /// Last scheduled instruction per accumulator, indexed directly by the
    /// [`AccId`] (a flat 256-slot table — the issue path runs once per tile
    /// compute instruction, so it avoids hashing).
    by_acc: Box<[Option<InstTiming>; 256]>,
    busy_until: u64,
    issued: u64,
}

impl EngineTimer {
    /// Creates a timer for the given engine.
    pub fn new(cfg: EngineConfig) -> Self {
        EngineTimer {
            cfg,
            last_start: None,
            by_acc: Box::new([None; 256]),
            busy_until: 0,
            issued: 0,
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Number of instructions issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Cycle at which the last scheduled instruction completes.
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// Earliest start cycle for an instruction accumulating into `acc` whose
    /// source operands become ready at `ready`.
    pub fn earliest_start(&self, acc: AccId, ready: u64) -> u64 {
        let mut start = ready;
        // Structural: in-order issue, one instruction per stage.
        if let Some(prev) = self.last_start {
            start = start.max(prev + self.cfg.issue_interval() as u64);
        }
        // Data: accumulation chain on the same C register.
        if let Some(producer) = self.by_acc[acc as usize] {
            let gap = if self.cfg.output_forwarding() {
                // The consumer reads C at its FF start (start + WL); the
                // producer writes the first C element at
                // producer.start + WL + Nrows + log2(beta). Matching
                // stream order and rate, the consumer start may trail the
                // producer start by Nrows + log2(beta).
                producer.start + (self.cfg.nrows() + log2_ceil(self.cfg.beta())) as u64
            } else {
                // Without OF the consumer's FF must wait for the producer's
                // full writeback.
                producer
                    .completion
                    .saturating_sub(self.cfg.wl_latency() as u64)
            };
            start = start.max(gap);
        }
        start
    }

    /// Schedules an instruction, returning its timing.
    pub fn issue(&mut self, acc: AccId, ready: u64) -> InstTiming {
        let start = self.earliest_start(acc, ready);
        let completion = start + self.cfg.instruction_latency() as u64;
        let timing = InstTiming { start, completion };
        self.last_start = Some(start);
        self.by_acc[acc as usize] = Some(timing);
        self.busy_until = self.busy_until.max(completion);
        self.issued += 1;
        timing
    }
}

/// One tile instruction for batch scheduling: the accumulator it updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileOp {
    /// Accumulator register identity.
    pub acc: AccId,
}

/// Batch-schedules a sequence of tile instructions that are all ready at
/// cycle 0, returning per-instruction timings and the makespan. This models
/// the engine in isolation (Fig. 10); the full-core model lives in
/// `vegeta-sim`.
pub fn schedule_sequence(cfg: &EngineConfig, ops: &[TileOp]) -> (Vec<InstTiming>, u64) {
    let mut timer = EngineTimer::new(cfg.clone());
    let timings: Vec<InstTiming> = ops.iter().map(|op| timer.issue(op.acc, 0)).collect();
    let total = timings.iter().map(|t| t.completion).max().unwrap_or(0);
    (timings, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn independent(n: usize) -> Vec<TileOp> {
        (0..n).map(|i| TileOp { acc: i as u8 }).collect()
    }

    fn dependent(n: usize) -> Vec<TileOp> {
        vec![TileOp { acc: 2 }; n]
    }

    #[test]
    fn independent_ops_issue_at_the_interval() {
        // Fig. 10 (a)/(b): independent instructions start every
        // issue_interval cycles on both D-1-2 and S-16-2 (16 cycles).
        for cfg in [EngineConfig::rasa_dm(), EngineConfig::vegeta_s(16).unwrap()] {
            let (timings, _) = schedule_sequence(&cfg, &independent(4));
            for w in timings.windows(2) {
                assert_eq!(w[1].start - w[0].start, 16, "{}", cfg.name());
            }
        }
    }

    #[test]
    fn rasa_sm_stage_mismatch_slows_issue() {
        // §VI-C: RASA-SM suffers from stage mismatch: WL is 32 cycles while
        // FF is 16, so its issue interval is twice RASA-DM's.
        let (timings, _) = schedule_sequence(&EngineConfig::rasa_sm(), &independent(3));
        assert_eq!(timings[1].start - timings[0].start, 32);
    }

    #[test]
    fn dependent_ops_without_of_serialize_on_writeback() {
        let cfg = EngineConfig::vegeta_s(16).unwrap();
        let (timings, _) = schedule_sequence(&cfg, &dependent(2));
        // Second must delay its FF (start + WL) until the first completes.
        assert_eq!(
            timings[1].start + cfg.wl_latency() as u64,
            timings[0].completion
        );
    }

    #[test]
    fn output_forwarding_shrinks_dependent_gap() {
        let base = EngineConfig::vegeta_s(16).unwrap();
        let (no_of, total_no_of) = schedule_sequence(&base, &dependent(8));
        let cfg_of = base.with_output_forwarding(true);
        let (with_of, total_of) = schedule_sequence(&cfg_of, &dependent(8));
        let gap_no_of = no_of[1].start - no_of[0].start;
        let gap_of = with_of[1].start - with_of[0].start;
        assert!(gap_of < gap_no_of, "OF gap {gap_of} vs {gap_no_of}");
        // Fig. 10 (d): with OF the chain is nearly fully pipelined:
        // Nrows + log2(beta) = 17 cycles apart.
        assert_eq!(gap_of, 17);
        assert!(total_of < total_no_of);
    }

    #[test]
    fn of_makes_dependent_nearly_as_fast_as_independent() {
        let cfg = EngineConfig::vegeta_s(16)
            .unwrap()
            .with_output_forwarding(true);
        let (_, dep_total) = schedule_sequence(&cfg, &dependent(16));
        let (_, ind_total) = schedule_sequence(&cfg, &independent(16));
        // Within ~7% for a 16-deep chain.
        assert!(
            (dep_total as f64) < ind_total as f64 * 1.07,
            "{dep_total} vs {ind_total}"
        );
    }

    #[test]
    fn interleaving_accumulators_avoids_stalls_without_of() {
        // Software can hide the dependence by rotating two accumulators —
        // the optimized-kernel trick the simulator relies on.
        let cfg = EngineConfig::vegeta_s(16).unwrap();
        let rotated: Vec<TileOp> = (0..8).map(|i| TileOp { acc: (i % 2) as u8 }).collect();
        let (timings, _) = schedule_sequence(&cfg, &rotated);
        // With two accumulators, the same-acc producer is two issues back;
        // dependence is already satisfied by the structural interval most of
        // the time.
        let gaps: Vec<u64> = timings
            .windows(2)
            .map(|w| w[1].start - w[0].start)
            .collect();
        let avg = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
        assert!(
            avg < 24.0,
            "rotating accumulators should approach the issue interval, avg {avg}"
        );
    }

    #[test]
    fn ready_time_is_respected() {
        let cfg = EngineConfig::rasa_dm();
        let mut timer = EngineTimer::new(cfg);
        let t = timer.issue(0, 100);
        assert_eq!(t.start, 100);
        let t2 = timer.issue(1, 0);
        assert_eq!(t2.start, 116, "structural hazard from the first op");
    }

    #[test]
    fn completion_adds_instruction_latency() {
        let cfg = EngineConfig::vegeta_s(2).unwrap();
        let mut timer = EngineTimer::new(cfg.clone());
        let t = timer.issue(3, 7);
        assert_eq!(t.completion, 7 + cfg.instruction_latency() as u64);
        assert_eq!(timer.busy_until(), t.completion);
        assert_eq!(timer.issued(), 1);
    }
}
