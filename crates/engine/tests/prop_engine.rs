//! Property-based tests for the engine models.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use vegeta_engine::{dataflow, schedule_sequence, EngineConfig, EngineTimer, TileOp, TOTAL_MACS};
use vegeta_num::{Bf16, Matrix};
use vegeta_sparse::{prune, CompressedTile, NmRatio};

fn arb_config() -> impl Strategy<Value = EngineConfig> {
    prop_oneof![
        Just(EngineConfig::rasa_sm()),
        Just(EngineConfig::rasa_dm()),
        Just(EngineConfig::tmul_like()),
        (0usize..5).prop_map(|i| EngineConfig::vegeta_s([1, 2, 4, 8, 16][i]).unwrap()),
    ]
}

proptest! {
    /// Every config conserves the 512-MAC budget and its derived latencies
    /// are internally consistent.
    #[test]
    fn config_invariants(cfg in arb_config(), of in any::<bool>()) {
        let cfg = cfg.with_output_forwarding(of);
        prop_assert_eq!(cfg.nrows() * cfg.ncols() * cfg.macs_per_pe(), TOTAL_MACS);
        prop_assert!(cfg.issue_interval() <= cfg.instruction_latency());
        prop_assert!(cfg.first_writeback() < cfg.instruction_latency());
        prop_assert!(cfg.drain_latency() >= 1);
    }

    /// Scheduling is monotone: appending an instruction never reduces the
    /// makespan, and starts are strictly increasing.
    #[test]
    fn schedule_monotone(cfg in arb_config(), accs in proptest::collection::vec(0u8..4, 1..24)) {
        let ops: Vec<TileOp> = accs.iter().map(|&a| TileOp { acc: a }).collect();
        let (timings, total) = schedule_sequence(&cfg, &ops);
        for w in timings.windows(2) {
            prop_assert!(w[1].start > w[0].start, "in-order issue with a positive interval");
            prop_assert!(w[1].start - w[0].start >= cfg.issue_interval() as u64);
        }
        let (_, shorter) = schedule_sequence(&cfg, &ops[..ops.len() - 1]);
        prop_assert!(shorter <= total);
    }

    /// Output forwarding never makes any schedule slower.
    #[test]
    fn of_never_hurts(cfg in arb_config(), accs in proptest::collection::vec(0u8..3, 1..24)) {
        let ops: Vec<TileOp> = accs.iter().map(|&a| TileOp { acc: a }).collect();
        let (_, without) = schedule_sequence(&cfg.clone().with_output_forwarding(false), &ops);
        let (_, with) = schedule_sequence(&cfg.with_output_forwarding(true), &ops);
        prop_assert!(with <= without, "OF {with} vs no-OF {without}");
    }

    /// The engine timer respects ready times and never goes backwards.
    #[test]
    fn timer_respects_ready(readies in proptest::collection::vec(0u64..1000, 1..20)) {
        let mut timer = EngineTimer::new(EngineConfig::vegeta_s(4).unwrap());
        let mut last_start = 0;
        for (i, &r) in readies.iter().enumerate() {
            let t = timer.issue((i % 3) as u8, r);
            prop_assert!(t.start >= r);
            prop_assert!(i == 0 || t.start > last_start);
            prop_assert!(t.completion > t.start);
            last_start = t.start;
        }
    }

    /// Dataflow simulation matches a direct computation for random sparse
    /// tiles on random sparse engines, at every supported pattern.
    #[test]
    fn dataflow_matches_direct(seed in any::<u64>(), alpha_idx in 0usize..5, ratio_idx in 0usize..3) {
        let cfg = EngineConfig::vegeta_s([1, 2, 4, 8, 16][alpha_idx]).unwrap();
        let ratio = [NmRatio::S1_4, NmRatio::S2_4, NmRatio::D4_4][ratio_idx];
        let mut rng = SmallRng::seed_from_u64(seed);
        let eff_cols = 32 / ratio.n() as usize * 4;
        // Integer-valued data keeps FP32 sums exact under any lane order.
        let eff = Matrix::from_fn(16, eff_cols, |r, c| {
            let keep = prune::random_nm(1, 4, ratio, &mut rng)[(0, c % 4)];
            if keep.is_zero() { Bf16::ZERO } else { Bf16::from_f32(((r + c) % 9) as f32 - 4.0) }
        });
        let eff = prune::magnitude_prune_nm(&eff, ratio);
        let tile = CompressedTile::compress(&eff, ratio).unwrap();
        let meta: Vec<u8> = {
            let mut m = tile.indices().to_vec();
            m.resize(512, 0);
            m
        };
        let values = Matrix::from_fn(16, 32, |r, c| {
            if c < tile.values().cols() { tile.values()[(r, c)] } else { Bf16::ZERO }
        });
        let bt = Matrix::from_fn(16, eff_cols, |r, c| Bf16::from_f32(((r * 5 + c) % 7) as f32 - 3.0));
        let c_in = Matrix::from_fn(16, 16, |r, c| (r + c) as f32);
        let op = dataflow::TileWiseOp {
            a_values: &values,
            a_meta: if ratio.is_dense() { None } else { Some(&meta) },
            ratio,
            bt: &bt,
            c_in: &c_in,
        };
        let res = dataflow::simulate_tile(&cfg, &op).unwrap();
        for p in 0..16 {
            for j in 0..16 {
                let mut acc = c_in[(p, j)];
                for k in 0..eff_cols {
                    acc += eff[(p, k)].to_f32() * bt[(j, k)].to_f32();
                }
                prop_assert_eq!(res.c_out[(p, j)], acc, "({}, {})", p, j);
            }
        }
    }

    /// Row-wise packing conserves rows and never overfills a tile.
    #[test]
    fn packing_conserves_rows(ns in proptest::collection::vec(0usize..3, 1..200)) {
        let ratios: Vec<NmRatio> =
            ns.iter().map(|&i| [NmRatio::S1_4, NmRatio::S2_4, NmRatio::D4_4][i]).collect();
        let tiles = vegeta_engine::rowwise::pack_rows(&ratios);
        let covered: usize = tiles.iter().map(|t| t.rows.len()).sum();
        prop_assert_eq!(covered, ratios.len());
        for t in &tiles {
            prop_assert!(t.lanes_used <= vegeta_engine::rowwise::LANES_PER_TILE);
            prop_assert!(t.rows.len() <= vegeta_engine::rowwise::MAX_ROWS_PER_TILE);
        }
        // Rows appear exactly once, in order.
        let mut seen = Vec::new();
        for t in &tiles {
            seen.extend_from_slice(&t.rows);
        }
        prop_assert_eq!(seen, (0..ratios.len()).collect::<Vec<_>>());
    }
}
