//! Register dataflow: def-before-use, clobber, and unconsumed-write
//! analysis over tile, metadata, and vector registers.
//!
//! The pass walks a stream's ops in order and tracks a small abstract state
//! per architectural register:
//!
//! * **tile registers** (`treg0-7`, including accumulator groups and the
//!   treg pairs/quads behind `ureg`/`vreg` operands) — a read of a treg no
//!   instruction has defined is [`DiagCode::TileUseBeforeDef`];
//! * **metadata registers** (`mreg0-7`) are modeled as *two* sub-slots,
//!   because `TILE_LOAD_M` (N:M positions) and `TILE_LOAD_RP` (row
//!   patterns) fill different architectural state behind the same register
//!   name: `TILE_SPMM_U`/`_V` need positions, `TILE_SPMM_R` needs both.
//!   Reading a missing sub-slot is [`DiagCode::MetaUseBeforeDef`];
//! * **vector registers** — the K-split reduction sequence keeps an
//!   all-ones multiplicand in a register the stream itself never writes;
//!   such registers must be declared live-in via
//!   [`DataflowConfig::vec_live_in`] or their use is
//!   [`DiagCode::VecUseBeforeDef`];
//! * scalar GPRs hold ambient loop state (trip counts seeded before the
//!   kernel body) and are always treated as live-in.
//!
//! A write that clobbers a still-unread write is [`DiagCode::DeadWrite`];
//! a write never read by stream end (an accumulator that is never stored)
//! is [`DiagCode::UnconsumedWrite`].

use vegeta_isa::trace::TraceOp;
use vegeta_isa::{Inst, RegRef};

use crate::diag::{DiagCode, Diagnostic};

/// The vector register the K-split reduction keeps its all-ones
/// multiplicand in (see `emit_reduction_tile`): live-in by convention.
pub const REDUCTION_ONES_VREG: u8 = 2;

/// Live-in assumptions for the dataflow pass.
#[derive(Debug, Clone)]
pub struct DataflowConfig {
    /// Vector registers defined before the stream starts.
    pub vec_live_in: Vec<u8>,
}

impl Default for DataflowConfig {
    fn default() -> Self {
        DataflowConfig {
            vec_live_in: vec![REDUCTION_ONES_VREG],
        }
    }
}

/// Abstract state of one register (or metadata sub-slot).
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    /// Some instruction (or a live-in declaration) has defined it.
    defined: bool,
    /// Index of a write no later op has read yet.
    unread: Option<u64>,
}

impl Slot {
    fn live_in() -> Self {
        Slot {
            defined: true,
            unread: None,
        }
    }
}

/// Streaming dataflow analysis: feed ops in order, then [`finish`].
///
/// [`finish`]: DataflowPass::finish
#[derive(Debug)]
pub struct DataflowPass {
    tiles: [Slot; 8],
    meta_pos: [Slot; 8],
    meta_rp: [Slot; 8],
    vecs: Vec<Slot>,
    diags: Vec<Diagnostic>,
    idx: u64,
}

impl DataflowPass {
    /// A fresh pass with `cfg`'s live-in assumptions.
    pub fn new(cfg: &DataflowConfig) -> Self {
        let mut vecs = vec![Slot::default(); 256];
        for &v in &cfg.vec_live_in {
            vecs[v as usize] = Slot::live_in();
        }
        DataflowPass {
            tiles: [Slot::default(); 8],
            meta_pos: [Slot::default(); 8],
            meta_rp: [Slot::default(); 8],
            vecs,
            diags: Vec::new(),
            idx: 0,
        }
    }

    /// Processes the next op of the stream.
    pub fn op(&mut self, op: &TraceOp) {
        match *op {
            TraceOp::Tile(inst) => self.tile_inst(inst),
            TraceOp::VecLoad { dst, .. } => self.write_vec(dst),
            TraceOp::VecStore { src, .. } => self.read_vec(src),
            TraceOp::VecFma { acc, a, b } => {
                self.read_vec(acc);
                self.read_vec(a);
                self.read_vec(b);
                self.write_vec(acc);
            }
            TraceOp::VecOp { dst, src } => {
                self.read_vec(src);
                self.write_vec(dst);
            }
            // GPRs hold ambient loop state; always live, never tracked.
            TraceOp::Scalar { .. } | TraceOp::Branch { .. } => {}
        }
        self.idx += 1;
    }

    /// Ends the stream: reports writes nothing ever read.
    pub fn finish(mut self) -> Vec<Diagnostic> {
        for (name, slots) in [
            ("treg", &self.tiles[..]),
            ("mreg positions of", &self.meta_pos[..]),
            ("mreg row patterns of", &self.meta_rp[..]),
        ] {
            for (i, slot) in slots.iter().enumerate() {
                if let Some(at) = slot.unread {
                    self.diags.push(
                        Diagnostic::new(
                            DiagCode::UnconsumedWrite,
                            format!("{name}{i} written at op {at} is never read"),
                        )
                        .at_op(at),
                    );
                }
            }
        }
        for (i, slot) in self.vecs.iter().enumerate() {
            if let Some(at) = slot.unread {
                self.diags.push(
                    Diagnostic::new(
                        DiagCode::UnconsumedWrite,
                        format!("vreg{i} written at op {at} is never read"),
                    )
                    .at_op(at),
                );
            }
        }
        self.diags
    }

    /// Diagnostics found so far (without the end-of-stream check).
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    fn tile_inst(&mut self, inst: Inst) {
        // Reads first (an accumulator is read *and* written by compute, and
        // the read must clear the pending-unread state before the write).
        for r in inst.reads() {
            match r {
                RegRef::Tile(t) => self.read_tile(t.index()),
                // Metadata reads are re-derived below with sub-slot
                // precision; `RegRef` cannot distinguish positions from
                // row patterns.
                RegRef::Meta(_) => {}
            }
        }
        match inst {
            Inst::TileSpmmU { a, .. } | Inst::TileSpmmV { a, .. } => {
                self.read_meta_pos(a.paired_mreg().index());
            }
            Inst::TileSpmmR { a, .. } => {
                let m = a.paired_mreg().index();
                self.read_meta_pos(m);
                self.read_meta_rp(m);
            }
            _ => {}
        }
        match inst {
            Inst::TileLoadM { dst, .. } => self.write_meta(dst.index(), true),
            Inst::TileLoadRp { dst, .. } => self.write_meta(dst.index(), false),
            _ => {
                for w in inst.writes() {
                    if let RegRef::Tile(t) = w {
                        self.write_tile(t.index());
                    }
                }
            }
        }
    }

    fn read_tile(&mut self, i: usize) {
        if !self.tiles[i].defined {
            self.diags.push(
                Diagnostic::new(
                    DiagCode::TileUseBeforeDef,
                    format!("treg{i} read before any def"),
                )
                .at_op(self.idx),
            );
        }
        self.tiles[i].unread = None;
    }

    fn write_tile(&mut self, i: usize) {
        if let Some(at) = self.tiles[i].unread {
            self.diags.push(
                Diagnostic::new(
                    DiagCode::DeadWrite,
                    format!(
                        "treg{i} written at op {at} clobbered unread at op {}",
                        self.idx
                    ),
                )
                .at_op(self.idx),
            );
        }
        self.tiles[i] = Slot {
            defined: true,
            unread: Some(self.idx),
        };
    }

    fn read_meta_pos(&mut self, i: usize) {
        if !self.meta_pos[i].defined {
            self.diags.push(
                Diagnostic::new(
                    DiagCode::MetaUseBeforeDef,
                    format!("mreg{i} N:M positions read before TILE_LOAD_M"),
                )
                .at_op(self.idx),
            );
        }
        self.meta_pos[i].unread = None;
    }

    fn read_meta_rp(&mut self, i: usize) {
        if !self.meta_rp[i].defined {
            self.diags.push(
                Diagnostic::new(
                    DiagCode::MetaUseBeforeDef,
                    format!("mreg{i} row patterns read before TILE_LOAD_RP"),
                )
                .at_op(self.idx),
            );
        }
        self.meta_rp[i].unread = None;
    }

    fn write_meta(&mut self, i: usize, positions: bool) {
        let (slots, what) = if positions {
            (&mut self.meta_pos, "N:M positions")
        } else {
            (&mut self.meta_rp, "row patterns")
        };
        if let Some(at) = slots[i].unread {
            self.diags.push(
                Diagnostic::new(
                    DiagCode::DeadWrite,
                    format!(
                        "mreg{i} {what} written at op {at} clobbered unread at op {}",
                        self.idx
                    ),
                )
                .at_op(self.idx),
            );
        }
        slots[i] = Slot {
            defined: true,
            unread: Some(self.idx),
        };
    }

    fn read_vec(&mut self, i: u8) {
        let slot = &mut self.vecs[i as usize];
        if !slot.defined {
            self.diags.push(
                Diagnostic::new(
                    DiagCode::VecUseBeforeDef,
                    format!("vreg{i} read before any def (not declared live-in)"),
                )
                .at_op(self.idx),
            );
        }
        slot.unread = None;
    }

    fn write_vec(&mut self, i: u8) {
        let slot = &mut self.vecs[i as usize];
        if let Some(at) = slot.unread {
            self.diags.push(
                Diagnostic::new(
                    DiagCode::DeadWrite,
                    format!(
                        "vreg{i} written at op {at} clobbered unread at op {}",
                        self.idx
                    ),
                )
                .at_op(self.idx),
            );
        }
        *slot = Slot {
            defined: true,
            unread: Some(self.idx),
        };
    }
}

/// Runs the dataflow pass over a complete op sequence.
pub fn check_dataflow(ops: &[TraceOp], cfg: &DataflowConfig) -> Vec<Diagnostic> {
    let mut pass = DataflowPass::new(cfg);
    for op in ops {
        pass.op(op);
    }
    pass.finish()
}
