//! Static verification of VEGETA kernel instruction streams and shard
//! plans — without executing anything.
//!
//! VEGETA's correctness story rests on instruction streams that are
//! *generated* (per kernel family), *sharded* (`ShardPlan` rectangles and
//! K-depth slices), and *replayed at scale*. A latent stream bug — a tile
//! register read before its load, an address plan that walks outside its
//! declared working set, a shard plan that double-covers a block — silently
//! corrupts results or cycle counts. This crate proves stream
//! well-formedness statically, before any simulation runs, with four
//! passes:
//!
//! 1. **Register dataflow** ([`dataflow`]) — def-before-use, clobber, and
//!    unconsumed-write analysis over tile registers, accumulator groups,
//!    and the two metadata sub-slots (`TILE_LOAD_M` positions vs
//!    `TILE_LOAD_RP` row patterns), including the post-barrier K-split
//!    reduction's vector sequence. Codes `V-DF01..05`.
//! 2. **Address-plan bounds & aliasing** ([`bounds`]) — every memory
//!    access must stay inside the kernel's declared
//!    [`Footprint`](vegeta_isa::Footprint) regions, stores must hit
//!    writable regions, tile-engine accesses must be 64 B aligned; and
//!    concurrent shards' tile-store write sets must be disjoint. Codes
//!    `V-AB01..03` (+ `V-SP04` at set level).
//! 3. **Shard-plan coverage** ([`coverage`]) — a `ShardPlan`'s rectangles
//!    and K-slices must tile the M×N×K unit grid exactly once, and every
//!    K-split must have a matching reduction that reads exactly the
//!    partial lines the shards wrote. Codes `V-SP01..03`.
//! 4. **Stream-length accounting** ([`verify`]) — the declared block/stream
//!    op counts (which LPT scheduling trusts for load balancing) must match
//!    the statically recomputed emission lengths. Codes `V-LN01..02`.
//!
//! The top-level entry points are [`verify_spec`] (one kernel stream),
//! [`verify_shard_streams`] (the legacy 1D split), and [`verify_shard_set`]
//! / [`verify_shard_set_with`] (2D/K-split plans with reduction). The
//! [`mutation`] module is the harness that proves the verifier *rejects*:
//! it seeds one defect per operator into real generated artifacts and
//! checks the expected diagnostic fires.
//!
//! # Example
//!
//! ```
//! use vegeta_kernels::{GemmShape, KernelOptions, KernelSpec, SparseMode};
//!
//! let spec = KernelSpec::Tiled {
//!     mode: SparseMode::Nm2of4,
//!     opts: KernelOptions::default(),
//! };
//! let shape = GemmShape::new(96, 64, 256);
//! assert!(vegeta_lint::verify_spec(&spec, shape).is_clean());
//! assert!(vegeta_lint::verify_shard_set(&spec, shape, 16).is_clean());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bounds;
pub mod coverage;
pub mod dataflow;
pub mod diag;
pub mod mutation;
pub mod verify;

pub use bounds::{check_bounds, AccessSummary, BoundsPass};
pub use coverage::{check_coverage, CoverBox};
pub use dataflow::{check_dataflow, DataflowConfig, DataflowPass, REDUCTION_ONES_VREG};
pub use diag::{DiagCode, Diagnostic, Report};
pub use mutation::{run_corpus, Mutation, OpsEmitter};
pub use verify::{
    check_set, verify_blocks, verify_ops, verify_shard_set, verify_shard_set_with,
    verify_shard_streams, verify_spec, LintConfig, MAX_DIAGS_PER_STREAM,
};
