//! Mutation-testing harness: corrupt *valid* generated streams and shard
//! plans in targeted ways and check the verifier rejects every one.
//!
//! Each [`Mutation`] operator seeds exactly one defect class into a real
//! artifact (a tiled/row-wise stream, a K-split reduction, a shard set)
//! and re-runs the public verification passes. A healthy verifier reports
//! the operator's [`Mutation::expect`]ed diagnostic code; a silent pass is
//! a verifier bug. The corpus doubles as executable documentation of what
//! each diagnostic means.

use vegeta_isa::footprint::{Footprint, RegionClass};
use vegeta_isa::stream::{BlockEmitter, InstStream};
use vegeta_isa::trace::TraceOp;
use vegeta_isa::{Inst, TReg};
use vegeta_kernels::{
    GemmShape, KernelEmitter, KernelOptions, KernelSpec, ShardKind, ShardPlan, SparseMode,
};
use vegeta_sparse::NmRatio;

use crate::bounds::AccessSummary;
use crate::coverage::{check_coverage, CoverBox};
use crate::diag::{DiagCode, Report};
use crate::verify::{check_set, verify_blocks, verify_ops, LintConfig};

/// A block emitter over materialized ops with independently declared
/// lengths — the harness's stand-in for a corrupted generator whose
/// `block_ops` bookkeeping disagrees with its emission.
#[derive(Debug, Clone)]
pub struct OpsEmitter {
    /// The ops each block emits.
    pub blocks: Vec<Vec<TraceOp>>,
    /// The per-block lengths the emitter *declares* (what LPT would trust).
    pub declared: Vec<u64>,
}

impl OpsEmitter {
    /// An emitter whose declared lengths match its blocks exactly.
    pub fn truthful(blocks: Vec<Vec<TraceOp>>) -> Self {
        let declared = blocks.iter().map(|b| b.len() as u64).collect();
        OpsEmitter { blocks, declared }
    }
}

impl BlockEmitter for OpsEmitter {
    fn blocks(&self) -> usize {
        self.blocks.len()
    }

    fn block_ops(&self, block: usize) -> u64 {
        self.declared[block]
    }

    fn emit_block(&self, block: usize, out: &mut Vec<TraceOp>) {
        out.extend(self.blocks[block].iter().copied());
    }

    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .blocks
                .iter()
                .map(|b| b.capacity() * std::mem::size_of::<TraceOp>())
                .sum::<usize>()
    }
}

/// One corruption operator of the mutation corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Retarget a compute op's accumulator to a never-defined treg.
    SwapAccumulatorReg,
    /// Drop the `TILE_ZERO` that defines an accumulator.
    DropAccumulatorZero,
    /// Drop a `TILE_LOAD_M`, leaving N:M positions undefined.
    DropMetaLoad,
    /// Drop a `TILE_LOAD_RP` in a row-wise stream, leaving row patterns
    /// undefined for `TILE_SPMM_R`.
    DropRowPatternLoad,
    /// Retarget a compute op's `A` operand to a never-defined treg.
    SwapOperandReg,
    /// Duplicate a load so the first write is clobbered unread.
    DuplicateLoad,
    /// Drop the final store, leaving an accumulator unconsumed.
    DropFinalStore,
    /// Skew the `A` address-plan stride so loads walk out of bounds.
    SkewPlanStride,
    /// Retarget a `C` store into the read-only `B` operand region.
    StoreIntoOperandB,
    /// Knock a tile load off 64 B alignment.
    MisalignTileLoad,
    /// Make the reduction read an undeclared vector register.
    UndeclaredVecRead,
    /// Declare a block length different from what the block emits.
    LieBlockLength,
    /// Declare a stream total different from the sum of its blocks.
    LieStreamLength,
    /// Drop the reduction stream from a K-split shard set.
    DropReduction,
    /// Truncate the reduction so it reads only part of the partials.
    TruncateReductionReads,
    /// Remove one rectangle from a shard plan's coverage.
    CoverageHole,
    /// Duplicate one rectangle in a shard plan's coverage.
    DoubleCover,
    /// Make two shards write the same `C` lines.
    CollideShardStores,
}

impl Mutation {
    /// Every operator of the corpus.
    pub fn all() -> Vec<Mutation> {
        vec![
            Mutation::SwapAccumulatorReg,
            Mutation::DropAccumulatorZero,
            Mutation::DropMetaLoad,
            Mutation::DropRowPatternLoad,
            Mutation::SwapOperandReg,
            Mutation::DuplicateLoad,
            Mutation::DropFinalStore,
            Mutation::SkewPlanStride,
            Mutation::StoreIntoOperandB,
            Mutation::MisalignTileLoad,
            Mutation::UndeclaredVecRead,
            Mutation::LieBlockLength,
            Mutation::LieStreamLength,
            Mutation::DropReduction,
            Mutation::TruncateReductionReads,
            Mutation::CoverageHole,
            Mutation::DoubleCover,
            Mutation::CollideShardStores,
        ]
    }

    /// Stable operator name (for reports and CI logs).
    pub fn name(self) -> &'static str {
        match self {
            Mutation::SwapAccumulatorReg => "swap-accumulator-reg",
            Mutation::DropAccumulatorZero => "drop-accumulator-zero",
            Mutation::DropMetaLoad => "drop-meta-load",
            Mutation::DropRowPatternLoad => "drop-row-pattern-load",
            Mutation::SwapOperandReg => "swap-operand-reg",
            Mutation::DuplicateLoad => "duplicate-load",
            Mutation::DropFinalStore => "drop-final-store",
            Mutation::SkewPlanStride => "skew-plan-stride",
            Mutation::StoreIntoOperandB => "store-into-operand-b",
            Mutation::MisalignTileLoad => "misalign-tile-load",
            Mutation::UndeclaredVecRead => "undeclared-vec-read",
            Mutation::LieBlockLength => "lie-block-length",
            Mutation::LieStreamLength => "lie-stream-length",
            Mutation::DropReduction => "drop-reduction",
            Mutation::TruncateReductionReads => "truncate-reduction-reads",
            Mutation::CoverageHole => "coverage-hole",
            Mutation::DoubleCover => "double-cover",
            Mutation::CollideShardStores => "collide-shard-stores",
        }
    }

    /// The diagnostic code a healthy verifier must report for this operator.
    pub fn expect(self) -> DiagCode {
        match self {
            Mutation::SwapAccumulatorReg
            | Mutation::DropAccumulatorZero
            | Mutation::SwapOperandReg => DiagCode::TileUseBeforeDef,
            Mutation::DropMetaLoad | Mutation::DropRowPatternLoad => DiagCode::MetaUseBeforeDef,
            Mutation::UndeclaredVecRead => DiagCode::VecUseBeforeDef,
            Mutation::DuplicateLoad => DiagCode::DeadWrite,
            Mutation::DropFinalStore => DiagCode::UnconsumedWrite,
            Mutation::SkewPlanStride => DiagCode::OutOfBounds,
            Mutation::StoreIntoOperandB => DiagCode::StoreToReadOnly,
            Mutation::MisalignTileLoad => DiagCode::Misaligned,
            Mutation::LieBlockLength => DiagCode::BlockLengthMismatch,
            Mutation::LieStreamLength => DiagCode::StreamLengthMismatch,
            Mutation::DropReduction | Mutation::TruncateReductionReads => {
                DiagCode::ReductionMismatch
            }
            Mutation::CoverageHole => DiagCode::CoverageHole,
            Mutation::DoubleCover => DiagCode::DoubleCoverage,
            Mutation::CollideShardStores => DiagCode::ShardWriteOverlap,
        }
    }

    /// Applies the operator to a freshly generated valid artifact and
    /// returns the verifier's report on the corrupted result.
    pub fn run(self) -> Report {
        let cfg = LintConfig::default();
        match self {
            Mutation::SwapAccumulatorReg => {
                let (mut ops, fp) = tiled_base();
                mutate_first(&mut ops, |op| match op {
                    TraceOp::Tile(Inst::TileSpmmU { acc, .. }) => {
                        // T5 is unused by the 2:4 register map.
                        *acc = TReg::T5;
                        true
                    }
                    _ => false,
                });
                ops_report(&ops, &fp, &cfg)
            }
            Mutation::DropAccumulatorZero => {
                let (mut ops, fp) = tiled_base();
                remove_first(&mut ops, |op| {
                    matches!(op, TraceOp::Tile(Inst::TileZero { .. }))
                });
                ops_report(&ops, &fp, &cfg)
            }
            Mutation::DropMetaLoad => {
                let (mut ops, fp) = tiled_base();
                remove_first(&mut ops, |op| {
                    matches!(op, TraceOp::Tile(Inst::TileLoadM { .. }))
                });
                ops_report(&ops, &fp, &cfg)
            }
            Mutation::DropRowPatternLoad => {
                let (mut ops, fp) = rowwise_base();
                remove_first(&mut ops, |op| {
                    matches!(op, TraceOp::Tile(Inst::TileLoadRp { .. }))
                });
                ops_report(&ops, &fp, &cfg)
            }
            Mutation::SwapOperandReg => {
                let (mut ops, fp) = tiled_base();
                mutate_first(&mut ops, |op| match op {
                    TraceOp::Tile(Inst::TileSpmmU { a, .. }) => {
                        // T3 is unused by the 2:4 register map.
                        *a = TReg::T3;
                        true
                    }
                    _ => false,
                });
                ops_report(&ops, &fp, &cfg)
            }
            Mutation::DuplicateLoad => {
                let (mut ops, fp) = tiled_base();
                if let Some(i) = ops
                    .iter()
                    .position(|op| matches!(op, TraceOp::Tile(Inst::TileLoadT { .. })))
                {
                    let dup = ops[i];
                    ops.insert(i, dup);
                }
                ops_report(&ops, &fp, &cfg)
            }
            Mutation::DropFinalStore => {
                let (mut ops, fp) = tiled_base();
                if let Some(i) = ops
                    .iter()
                    .rposition(|op| matches!(op, TraceOp::Tile(Inst::TileStoreT { .. })))
                {
                    ops.remove(i);
                }
                ops_report(&ops, &fp, &cfg)
            }
            Mutation::SkewPlanStride => {
                let (mut ops, fp) = tiled_base();
                let a = fp
                    .region_of_class(RegionClass::AValues)
                    .expect("tiled plans declare an A region")
                    .to_owned();
                for op in &mut ops {
                    if let TraceOp::Tile(Inst::TileLoadT { addr, .. }) = op {
                        if a.contains(*addr, 1) {
                            // 16x the declared stride: early iterations stay
                            // in bounds, later ones walk past the plan.
                            *addr = a.start + (*addr - a.start) * 16;
                        }
                    }
                }
                ops_report(&ops, &fp, &cfg)
            }
            Mutation::StoreIntoOperandB => {
                let (mut ops, fp) = tiled_base();
                let b_start = fp
                    .region_of_class(RegionClass::B)
                    .expect("tiled plans declare a B region")
                    .start;
                mutate_first(&mut ops, |op| match op {
                    TraceOp::Tile(Inst::TileStoreT { addr, .. }) => {
                        *addr = b_start;
                        true
                    }
                    _ => false,
                });
                ops_report(&ops, &fp, &cfg)
            }
            Mutation::MisalignTileLoad => {
                let (mut ops, fp) = tiled_base();
                mutate_first(&mut ops, |op| match op {
                    TraceOp::Tile(Inst::TileLoadT { addr, .. }) => {
                        *addr += 4;
                        true
                    }
                    _ => false,
                });
                ops_report(&ops, &fp, &cfg)
            }
            Mutation::UndeclaredVecRead => {
                let (mut ops, fp) = reduction_base();
                mutate_first(&mut ops, |op| match op {
                    TraceOp::VecFma { b, .. } => {
                        // vreg3 is neither written nor declared live-in.
                        *b = 3;
                        true
                    }
                    _ => false,
                });
                ops_report(&ops, &fp, &cfg)
            }
            Mutation::LieBlockLength => {
                let (emitter, fp) = tiled_emitter();
                let mut lying = OpsEmitter::truthful(materialize_blocks(&emitter));
                lying.declared[0] += 2;
                let declared_total = lying.declared.iter().sum();
                let (diags, _, ops) = verify_blocks(&lying, declared_total, &fp, &cfg);
                report_of(diags, ops)
            }
            Mutation::LieStreamLength => {
                let (emitter, fp) = tiled_emitter();
                let truthful = OpsEmitter::truthful(materialize_blocks(&emitter));
                let declared_total: u64 = truthful.declared.iter().sum::<u64>() + 7;
                let (diags, _, ops) = verify_blocks(&truthful, declared_total, &fp, &cfg);
                report_of(diags, ops)
            }
            Mutation::DropReduction => {
                let (dims, shards, _) = ksplit_set();
                report_of(check_set(dims, &shards, None), 0)
            }
            Mutation::TruncateReductionReads => {
                let (dims, shards, reduction) = ksplit_set();
                let (parts, mut ops, fp) = reduction;
                // Keep only part 0's loads and the stores: the dataflow
                // stays clean, but half the partial image is never merged.
                ops.retain(|op| {
                    !matches!(op, TraceOp::VecFma { .. } | TraceOp::VecLoad { dst: 1, .. })
                });
                let (diags, summary) = verify_ops(&ops, &fp, &cfg);
                let mut report = report_of(diags, ops.len() as u64);
                report
                    .diagnostics
                    .extend(check_set(dims, &shards, Some((parts, &summary))));
                report
            }
            Mutation::CoverageHole => {
                let (dims, mut boxes) = plan_boxes();
                boxes.pop();
                report_of(check_coverage(dims.0, dims.1, dims.2, &boxes), 0)
            }
            Mutation::DoubleCover => {
                let (dims, mut boxes) = plan_boxes();
                boxes.push(boxes[0].clone());
                report_of(check_coverage(dims.0, dims.1, dims.2, &boxes), 0)
            }
            Mutation::CollideShardStores => {
                let (dims, mut shards, _) = ksplit_set();
                // Aim shard 1 at shard 0's write set; coverage stays exact,
                // only the write-set disjointness is violated.
                let first = shards[0].1.clone();
                shards[1].1 = first;
                report_of(check_set(dims, &shards, None), 0)
            }
        }
    }
}

/// Runs the whole corpus; each entry pairs the operator with its report.
pub fn run_corpus() -> Vec<(Mutation, Report)> {
    Mutation::all().into_iter().map(|m| (m, m.run())).collect()
}

/// The canonical shape/mode the corpus corrupts: large enough for several
/// accumulator groups, column tiles, and `k`-tiles (so K-splits exist).
fn base_shape() -> GemmShape {
    GemmShape::new(96, 64, 256)
}

fn tiled_spec() -> KernelSpec {
    KernelSpec::Tiled {
        mode: SparseMode::Nm2of4,
        opts: KernelOptions::default(),
    }
}

fn tiled_emitter() -> (KernelEmitter, Footprint) {
    let emitter = KernelEmitter::for_spec(&tiled_spec(), base_shape());
    let fp = emitter.footprint();
    (emitter, fp)
}

fn tiled_base() -> (Vec<TraceOp>, Footprint) {
    let (emitter, fp) = tiled_emitter();
    (materialize(&emitter), fp)
}

fn rowwise_base() -> (Vec<TraceOp>, Footprint) {
    let mut ratios = vec![NmRatio::S1_4; 40];
    ratios.extend(vec![NmRatio::S2_4; 32]);
    ratios.extend(vec![NmRatio::D4_4; 24]);
    let spec = KernelSpec::RowWise { row_ratios: ratios };
    let emitter = KernelEmitter::for_spec(&spec, base_shape());
    let fp = emitter.footprint();
    (materialize(&emitter), fp)
}

/// Materialized reduction stream of a 2-way K-split, with the partial-C
/// footprint it must stay inside.
fn reduction_base() -> (Vec<TraceOp>, Footprint) {
    let (emitter, _) = tiled_emitter();
    let fp = emitter.footprint_with_partials(2);
    let set = emitter.shard_with(ShardPlan::new(1, 1, 2));
    let reduction = set.reduction.expect("k_splits=2 has a reduction");
    (materialize(reduction.emitter()), fp)
}

/// A verified 2-way K-split set: grid dims, per-shard (kind, summary)
/// pairs, and the reduction's (parts, ops, footprint).
#[allow(clippy::type_complexity)]
fn ksplit_set() -> (
    (usize, usize, usize),
    Vec<(ShardKind, AccessSummary)>,
    (usize, Vec<TraceOp>, Footprint),
) {
    let cfg = LintConfig::default();
    let (emitter, _) = tiled_emitter();
    let (m_units, n_units) = emitter.shard_layout();
    let k_units = emitter.k_units();
    let fp = emitter.footprint_with_partials(2);
    let set = emitter.shard_with(ShardPlan::new(2, 1, 2));
    let shards = set
        .shards
        .iter()
        .map(|s| {
            let (_, summary, _) = verify_blocks(s.emitter(), s.remaining(), &fp, &cfg);
            (s.emitter().kind(), summary)
        })
        .collect();
    let reduction = set.reduction.expect("k_splits=2 has a reduction");
    let ShardKind::Reduction { parts } = reduction.emitter().kind() else {
        unreachable!("reduction stream has Reduction kind")
    };
    (
        (m_units, n_units, k_units),
        shards,
        (parts, materialize(reduction.emitter()), fp),
    )
}

/// Grid dims + coverage boxes of a valid 2×2 plan over the tiled base.
fn plan_boxes() -> ((usize, usize, usize), Vec<CoverBox>) {
    let (emitter, _) = tiled_emitter();
    let (m_units, n_units) = emitter.shard_layout();
    let k_units = emitter.k_units();
    let set = emitter.shard_with(ShardPlan::new(2, 2, 1));
    let boxes = set
        .shards
        .iter()
        .filter_map(|s| CoverBox::from_kind(&s.emitter().kind(), k_units))
        .collect();
    ((m_units, n_units, k_units), boxes)
}

fn materialize<E: BlockEmitter>(emitter: &E) -> Vec<TraceOp> {
    let mut ops = Vec::new();
    for b in 0..emitter.blocks() {
        emitter.emit_block(b, &mut ops);
    }
    ops
}

fn materialize_blocks<E: BlockEmitter>(emitter: &E) -> Vec<Vec<TraceOp>> {
    (0..emitter.blocks())
        .map(|b| {
            let mut buf = Vec::new();
            emitter.emit_block(b, &mut buf);
            buf
        })
        .collect()
}

fn mutate_first(ops: &mut [TraceOp], mut f: impl FnMut(&mut TraceOp) -> bool) {
    for op in ops {
        if f(op) {
            return;
        }
    }
}

fn remove_first(ops: &mut Vec<TraceOp>, f: impl Fn(&TraceOp) -> bool) {
    if let Some(i) = ops.iter().position(f) {
        ops.remove(i);
    }
}

fn ops_report(ops: &[TraceOp], fp: &Footprint, cfg: &LintConfig) -> Report {
    let (diags, _) = verify_ops(ops, fp, cfg);
    report_of(diags, ops.len() as u64)
}

fn report_of(diags: Vec<crate::diag::Diagnostic>, ops: u64) -> Report {
    Report {
        diagnostics: diags,
        ops_checked: ops,
        streams_checked: 1,
    }
}
