//! Address-plan bounds and alias analysis.
//!
//! Every kernel family's address plan is affine and declared up front as a
//! [`Footprint`] ([`vegeta_kernels::KernelEmitter::footprint`]). This pass
//! walks a stream's memory accesses and checks each one is fully contained
//! in a declared region ([`DiagCode::OutOfBounds`] otherwise), that stores
//! only hit writable regions ([`DiagCode::StoreToReadOnly`]), and that
//! tile-engine accesses are 64 B line-aligned ([`DiagCode::Misaligned`] —
//! tile loads/stores move whole cache lines, §V-F).
//!
//! As a side product the pass collects the [`AccessSummary`] the set-level
//! checks need: the cache lines each shard's tile stores write (concurrent
//! shards must not overlap) and the partial-`C` lines a reduction stream
//! reads (which must match the K-split shards' partial writes exactly).
//!
//! Vector stores are deliberately excluded from the write-set summary: the
//! vector family's 4×16 microkernel blocking issues whole 64 B accesses
//! over ragged row tails, so adjacent shards legitimately touch the same
//! padded lines there.

use std::collections::BTreeSet;

use vegeta_isa::footprint::{AccessVerdict, Footprint, RegionClass};
use vegeta_isa::trace::TraceOp;
use vegeta_isa::CACHE_LINE_BYTES;

use crate::diag::{DiagCode, Diagnostic};

/// What a stream's memory traffic looked like, for set-level checks.
#[derive(Debug, Clone, Default)]
pub struct AccessSummary {
    /// 64 B lines written by tile stores, with the region class hit.
    pub store_lines: Vec<(u64, RegionClass)>,
    /// 64 B lines read from partial-`C` regions (the reduction's inputs).
    pub partial_read_lines: BTreeSet<u64>,
}

impl AccessSummary {
    /// The subset of [`AccessSummary::store_lines`] that hit partial-`C`
    /// regions, as a set.
    pub fn partial_store_lines(&self) -> BTreeSet<u64> {
        self.store_lines
            .iter()
            .filter(|(_, class)| *class == RegionClass::PartialC)
            .map(|(line, _)| *line)
            .collect()
    }
}

/// Streaming bounds/alias analysis: feed ops in order, take the summary.
#[derive(Debug)]
pub struct BoundsPass<'a> {
    fp: &'a Footprint,
    diags: Vec<Diagnostic>,
    summary: AccessSummary,
    idx: u64,
}

impl<'a> BoundsPass<'a> {
    /// A fresh pass against the declared footprint `fp`.
    pub fn new(fp: &'a Footprint) -> Self {
        BoundsPass {
            fp,
            diags: Vec::new(),
            summary: AccessSummary::default(),
            idx: 0,
        }
    }

    /// Processes the next op of the stream.
    pub fn op(&mut self, op: &TraceOp) {
        let line = CACHE_LINE_BYTES as u64;
        if let Some((addr, bytes, is_store)) = op.mem_access() {
            let is_tile = matches!(op, TraceOp::Tile(_));
            if is_tile && addr % line != 0 {
                self.diags.push(
                    Diagnostic::new(
                        DiagCode::Misaligned,
                        format!("tile-engine access at {addr:#x} is not 64 B aligned"),
                    )
                    .at_op(self.idx),
                );
            }
            match self.fp.classify(addr, bytes as u64, is_store) {
                AccessVerdict::Ok(class) => {
                    let lines = || (addr / line)..(addr / line + (bytes as u64).div_ceil(line));
                    if is_store && is_tile {
                        self.summary.store_lines.extend(lines().map(|l| (l, class)));
                    } else if !is_store && class == RegionClass::PartialC {
                        self.summary.partial_read_lines.extend(lines());
                    }
                }
                AccessVerdict::ReadOnly(class) => self.diags.push(
                    Diagnostic::new(
                        DiagCode::StoreToReadOnly,
                        format!("store of {bytes} B at {addr:#x} hits read-only {class} region"),
                    )
                    .at_op(self.idx),
                ),
                AccessVerdict::Unmapped => self.diags.push(
                    Diagnostic::new(
                        DiagCode::OutOfBounds,
                        format!(
                            "{} of {bytes} B at {addr:#x} outside every declared region \
                             (plan ends at {:#x})",
                            if is_store { "store" } else { "load" },
                            self.fp.end()
                        ),
                    )
                    .at_op(self.idx),
                ),
            }
        }
        self.idx += 1;
    }

    /// Ends the stream, yielding the findings and the traffic summary.
    pub fn finish(self) -> (Vec<Diagnostic>, AccessSummary) {
        (self.diags, self.summary)
    }

    /// Diagnostics found so far.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }
}

/// Runs the bounds pass over a complete op sequence.
pub fn check_bounds(ops: &[TraceOp], fp: &Footprint) -> (Vec<Diagnostic>, AccessSummary) {
    let mut pass = BoundsPass::new(fp);
    for op in ops {
        pass.op(op);
    }
    pass.finish()
}
