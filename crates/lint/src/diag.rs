//! Typed diagnostics: codes, locations, and the report they roll up into.

use std::fmt;

/// Every defect class the verifier can report, with a stable code.
///
/// The code namespaces are: `V-DF` register dataflow, `V-AB` address
/// bounds/aliasing, `V-SP` shard-plan coverage, `V-LN` length accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagCode {
    /// `V-DF01` — a tile register is read before any instruction defines it.
    TileUseBeforeDef,
    /// `V-DF02` — a metadata register sub-slot (N:M positions or row
    /// patterns) is read before the matching `TILE_LOAD_M` / `TILE_LOAD_RP`.
    MetaUseBeforeDef,
    /// `V-DF03` — a vector register is read before being defined (and is
    /// not a declared live-in such as the reduction's all-ones constant).
    VecUseBeforeDef,
    /// `V-DF04` — a register write is clobbered by a later write with no
    /// intervening read (the first write is dead).
    DeadWrite,
    /// `V-DF05` — a register write is never read before the stream ends
    /// (e.g. an accumulator that is never stored).
    UnconsumedWrite,
    /// `V-AB01` — a memory access falls outside every declared operand
    /// region of the kernel's address plan.
    OutOfBounds,
    /// `V-AB02` — a store targets a read-only operand region.
    StoreToReadOnly,
    /// `V-AB03` — a tile-engine access is not 64 B line-aligned.
    Misaligned,
    /// `V-SP01` — the shard plan leaves part of the block grid uncovered.
    CoverageHole,
    /// `V-SP02` — the shard plan covers part of the block grid more than
    /// once (or a shard exceeds the grid bounds).
    DoubleCoverage,
    /// `V-SP03` — K-split/reduction mismatch: a K-split without a matching
    /// reduction, a reduction without K-splits, or a reduction whose
    /// partial-image reads do not match the shards' partial writes.
    ReductionMismatch,
    /// `V-SP04` — two concurrent shards write the same cache line.
    ShardWriteOverlap,
    /// `V-LN01` — a block's emitted op count differs from its declared
    /// `block_ops` (the lengths LPT scheduling trusts).
    BlockLengthMismatch,
    /// `V-LN02` — a stream's declared total length differs from the sum of
    /// its blocks' emitted lengths.
    StreamLengthMismatch,
}

impl DiagCode {
    /// The stable diagnostic code, e.g. `V-DF01`.
    pub fn code(self) -> &'static str {
        match self {
            DiagCode::TileUseBeforeDef => "V-DF01",
            DiagCode::MetaUseBeforeDef => "V-DF02",
            DiagCode::VecUseBeforeDef => "V-DF03",
            DiagCode::DeadWrite => "V-DF04",
            DiagCode::UnconsumedWrite => "V-DF05",
            DiagCode::OutOfBounds => "V-AB01",
            DiagCode::StoreToReadOnly => "V-AB02",
            DiagCode::Misaligned => "V-AB03",
            DiagCode::CoverageHole => "V-SP01",
            DiagCode::DoubleCoverage => "V-SP02",
            DiagCode::ReductionMismatch => "V-SP03",
            DiagCode::ShardWriteOverlap => "V-SP04",
            DiagCode::BlockLengthMismatch => "V-LN01",
            DiagCode::StreamLengthMismatch => "V-LN02",
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One verifier finding: a typed code plus where in the stream it was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The defect class.
    pub code: DiagCode,
    /// Index of the shard the defect was found in (`None` for unsharded
    /// streams or set-level findings).
    pub shard: Option<usize>,
    /// Index of the offending op within its stream, when applicable.
    pub op_index: Option<u64>,
    /// Human-readable detail.
    pub message: String,
}

impl Diagnostic {
    /// A diagnostic with no location (set-level findings).
    pub fn new(code: DiagCode, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            shard: None,
            op_index: None,
            message: message.into(),
        }
    }

    /// Attaches a shard index.
    pub fn in_shard(mut self, shard: usize) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Attaches an op index.
    pub fn at_op(mut self, op: u64) -> Self {
        self.op_index = Some(op);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code)?;
        if let Some(shard) = self.shard {
            write!(f, " [shard {shard}]")?;
        }
        if let Some(op) = self.op_index {
            write!(f, " [op {op}]")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// The outcome of verifying a stream, shard set, or whole kernel grid.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Every finding, in discovery order.
    pub diagnostics: Vec<Diagnostic>,
    /// Ops statically walked (over all streams checked).
    pub ops_checked: u64,
    /// Streams walked (shards + reduction count individually).
    pub streams_checked: usize,
}

impl Report {
    /// `true` when no diagnostics were found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether any finding carries `code`.
    pub fn has(&self, code: DiagCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Folds another report into this one.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
        self.ops_checked += other.ops_checked;
        self.streams_checked += other.streams_checked;
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(
                f,
                "clean: {} ops across {} streams",
                self.ops_checked, self.streams_checked
            );
        }
        writeln!(
            f,
            "{} diagnostic(s) over {} ops across {} streams:",
            self.diagnostics.len(),
            self.ops_checked,
            self.streams_checked
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}
