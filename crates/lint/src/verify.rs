//! The verification driver: walks emitters block-by-block, runs every
//! pass, and rolls findings into a [`Report`].

use std::collections::HashMap;

use vegeta_isa::footprint::Footprint;
use vegeta_isa::stream::{BlockEmitter, InstStream};
use vegeta_isa::trace::TraceOp;
use vegeta_kernels::{GemmShape, KernelEmitter, KernelSpec, ShardKind, ShardPlan, ShardStream};

use crate::bounds::{check_bounds, AccessSummary, BoundsPass};
use crate::coverage::{check_coverage, CoverBox};
use crate::dataflow::{DataflowConfig, DataflowPass};
use crate::diag::{DiagCode, Diagnostic, Report};

/// Per-stream diagnostic cap: a single seeded defect can fire on every
/// iteration of a loop nest, so stop walking a stream once it is clearly
/// broken rather than materializing millions of findings.
pub const MAX_DIAGS_PER_STREAM: usize = 64;

/// Verifier configuration (currently the dataflow live-in assumptions).
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// Live-in assumptions for the dataflow pass.
    pub dataflow: DataflowConfig,
}

/// Statically verifies one block emitter against its declared footprint
/// and declared total length, running the dataflow, bounds, and length
/// passes in a single walk.
///
/// Returns the findings, the memory-traffic summary the set-level checks
/// consume, and the number of ops walked.
pub fn verify_blocks<E: BlockEmitter>(
    emitter: &E,
    declared_total: u64,
    fp: &Footprint,
    cfg: &LintConfig,
) -> (Vec<Diagnostic>, AccessSummary, u64) {
    let mut dataflow = DataflowPass::new(&cfg.dataflow);
    let mut bounds = BoundsPass::new(fp);
    let mut diags = Vec::new();
    let mut emitted_total = 0u64;
    let mut buf: Vec<TraceOp> = Vec::new();
    let mut truncated = false;
    for block in 0..emitter.blocks() {
        buf.clear();
        emitter.emit_block(block, &mut buf);
        let declared = emitter.block_ops(block);
        if buf.len() as u64 != declared {
            diags.push(Diagnostic::new(
                DiagCode::BlockLengthMismatch,
                format!(
                    "block {block} declares {declared} ops but emits {}",
                    buf.len()
                ),
            ));
        }
        emitted_total += buf.len() as u64;
        for op in &buf {
            dataflow.op(op);
            bounds.op(op);
        }
        if dataflow.diagnostics().len() + bounds.diagnostics().len() + diags.len()
            > MAX_DIAGS_PER_STREAM
        {
            truncated = true;
            break;
        }
    }
    if !truncated && emitted_total != declared_total {
        diags.push(Diagnostic::new(
            DiagCode::StreamLengthMismatch,
            format!("stream declares {declared_total} ops but emits {emitted_total}"),
        ));
    }
    if truncated {
        diags.extend(dataflow.finish().into_iter().filter(|d| {
            // Mid-stream truncation leaves live accumulators; only the
            // use/clobber findings are meaningful.
            d.code != DiagCode::UnconsumedWrite
        }));
    } else {
        diags.extend(dataflow.finish());
    }
    let (bounds_diags, summary) = bounds.finish();
    diags.extend(bounds_diags);
    (diags, summary, emitted_total)
}

/// Verifies a complete op sequence (no block structure) against `fp`:
/// the dataflow and bounds passes only. Returns the findings and the
/// traffic summary.
pub fn verify_ops(
    ops: &[TraceOp],
    fp: &Footprint,
    cfg: &LintConfig,
) -> (Vec<Diagnostic>, AccessSummary) {
    let mut diags = crate::dataflow::check_dataflow(ops, &cfg.dataflow);
    let (bounds_diags, summary) = check_bounds(ops, fp);
    diags.extend(bounds_diags);
    (diags, summary)
}

/// Set-level checks over already-verified per-stream results: coverage of
/// the `(m_units, n_units, k_units)` grid, pairwise disjointness of the
/// shards' tile-store write sets, and K-split/reduction matching.
///
/// `shards` pairs each shard's [`ShardKind`] with its traffic summary;
/// `reduction` carries the reduction's declared part count and summary
/// when present.
pub fn check_set(
    dims: (usize, usize, usize),
    shards: &[(ShardKind, AccessSummary)],
    reduction: Option<(usize, &AccessSummary)>,
) -> Vec<Diagnostic> {
    let (m_units, n_units, k_units) = dims;
    let boxes: Vec<CoverBox> = shards
        .iter()
        .filter_map(|(kind, _)| CoverBox::from_kind(kind, k_units))
        .collect();
    let mut diags = check_coverage(m_units, n_units, k_units, &boxes);

    // Concurrent shards must never write the same cache line.
    let mut writers: HashMap<u64, usize> = HashMap::new();
    'shards: for (i, (_, summary)) in shards.iter().enumerate() {
        for &(line, _) in &summary.store_lines {
            if let Some(&prev) = writers.get(&line) {
                if prev != i {
                    diags.push(
                        Diagnostic::new(
                            DiagCode::ShardWriteOverlap,
                            format!(
                                "shards {prev} and {i} both write line {:#x}",
                                line * vegeta_isa::CACHE_LINE_BYTES as u64
                            ),
                        )
                        .in_shard(i),
                    );
                    // One witness per set is enough; a systematic overlap
                    // would otherwise flood the report.
                    break 'shards;
                }
            } else {
                writers.insert(line, i);
            }
        }
    }

    // Every K-split needs a matching reduction, and vice versa.
    let k_parts: Vec<usize> = shards
        .iter()
        .filter_map(|(kind, _)| match kind {
            ShardKind::KSlice { part, .. } => Some(*part),
            _ => None,
        })
        .collect();
    let split_parts = k_parts.iter().max().map_or(0, |m| m + 1);
    match (reduction, split_parts) {
        (None, 0) => {}
        (None, _) => diags.push(Diagnostic::new(
            DiagCode::ReductionMismatch,
            format!("{split_parts} K-split parts but no reduction stream"),
        )),
        (Some((parts, _)), 0) => diags.push(Diagnostic::new(
            DiagCode::ReductionMismatch,
            format!("reduction stream for {parts} parts but no K-split shards"),
        )),
        (Some((parts, summary)), _) => {
            if parts != split_parts {
                diags.push(Diagnostic::new(
                    DiagCode::ReductionMismatch,
                    format!("reduction merges {parts} parts but shards produce {split_parts}"),
                ));
            }
            let written: std::collections::BTreeSet<u64> = shards
                .iter()
                .flat_map(|(_, s)| s.partial_store_lines())
                .collect();
            if summary.partial_read_lines != written {
                diags.push(Diagnostic::new(
                    DiagCode::ReductionMismatch,
                    format!(
                        "reduction reads {} partial-C lines but shards wrote {}",
                        summary.partial_read_lines.len(),
                        written.len()
                    ),
                ));
            }
        }
    }
    diags
}

/// Verifies the unsharded stream of `spec` at `shape`: dataflow, bounds,
/// and length accounting over every block.
pub fn verify_spec(spec: &KernelSpec, shape: GemmShape) -> Report {
    let cfg = LintConfig::default();
    let emitter = KernelEmitter::for_spec(spec, shape);
    let fp = emitter.footprint();
    let declared = spec.stream(shape).remaining();
    let (diags, _, ops) = verify_blocks(&emitter, declared, &fp, &cfg);
    Report {
        diagnostics: diags,
        ops_checked: ops,
        streams_checked: 1,
    }
}

/// Verifies the legacy 1D M-row split of `spec` into `n` shard streams
/// (the static scheduler's sharding), including coverage and write-set
/// disjointness across the shards.
pub fn verify_shard_streams(spec: &KernelSpec, shape: GemmShape, n: usize) -> Report {
    let emitter = KernelEmitter::for_spec(spec, shape);
    let shards = spec.shard_streams(shape, n);
    verify_shards_of(&emitter, &shards, None)
}

/// Verifies the 2D/K-split [`ShardPlan`] `spec.shard_plan(shape, cores)`
/// picks — the set LPT scheduling runs (see
/// [`vegeta_kernels::KernelSpec::shard_set`]).
pub fn verify_shard_set(spec: &KernelSpec, shape: GemmShape, cores: usize) -> Report {
    verify_shard_set_with(spec, shape, spec.shard_plan(shape, cores))
}

/// Verifies the shard set `plan` cuts `spec` into at `shape`: every shard
/// stream (dataflow/bounds/lengths), exact grid coverage, write-set
/// disjointness, and the K-split/reduction contract.
pub fn verify_shard_set_with(spec: &KernelSpec, shape: GemmShape, plan: ShardPlan) -> Report {
    let emitter = KernelEmitter::for_spec(spec, shape);
    let set = KernelEmitter::for_spec(spec, shape).shard_with(plan);
    verify_shards_of(&emitter, &set.shards, set.reduction.as_ref())
}

/// Shared driver for both sharding flavors: verifies each stream, then the
/// set-level contracts.
fn verify_shards_of(
    emitter: &KernelEmitter,
    shards: &[ShardStream],
    reduction: Option<&ShardStream>,
) -> Report {
    let cfg = LintConfig::default();
    let (m_units, n_units) = emitter.shard_layout();
    let k_units = emitter.k_units();
    let split_parts = shards
        .iter()
        .filter_map(|s| match s.emitter().kind() {
            ShardKind::KSlice { part, .. } => Some(part + 1),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let fp = emitter.footprint_with_partials(split_parts);
    let mut report = Report::default();
    let mut results: Vec<(ShardKind, AccessSummary)> = Vec::with_capacity(shards.len());
    for (i, shard) in shards.iter().enumerate() {
        let (diags, summary, ops) = verify_blocks(shard.emitter(), shard.remaining(), &fp, &cfg);
        report
            .diagnostics
            .extend(diags.into_iter().map(|d| d.in_shard(i)));
        report.ops_checked += ops;
        report.streams_checked += 1;
        results.push((shard.emitter().kind(), summary));
    }
    let reduction_result = reduction.map(|r| {
        let (diags, summary, ops) = verify_blocks(r.emitter(), r.remaining(), &fp, &cfg);
        report.diagnostics.extend(diags);
        report.ops_checked += ops;
        report.streams_checked += 1;
        let parts = match r.emitter().kind() {
            ShardKind::Reduction { parts } => parts,
            _ => 0,
        };
        (parts, summary)
    });
    report.diagnostics.extend(check_set(
        (m_units, n_units, k_units),
        &results,
        reduction_result.as_ref().map(|(p, s)| (*p, s)),
    ));
    report
}
