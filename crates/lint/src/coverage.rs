//! Shard-plan coverage: prove a [`ShardSet`]'s rectangles and K-depth
//! slices tile the kernel's M×N×K unit grid exactly once.
//!
//! Each shard claims an axis-aligned box of the unit space (a full-depth
//! rectangle, or a rectangle × `k`-tile range for K-split shards — see
//! [`vegeta_kernels::ShardKind`]). Exactly-once tiling is checked without
//! materializing the grid: every box must lie within bounds, boxes must be
//! pairwise disjoint, and their volumes must sum to the grid volume — which
//! together imply an exact partition.
//!
//! [`ShardSet`]: vegeta_kernels::ShardSet

use std::ops::Range;

use vegeta_kernels::ShardKind;

use crate::diag::{DiagCode, Diagnostic};

/// The axis-aligned unit-space box one shard claims.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverBox {
    /// Outer M-row unit range.
    pub rows: Range<usize>,
    /// Inner output-column unit range.
    pub cols: Range<usize>,
    /// `k`-tile range (the full `0..k_units` for full-depth rectangles).
    pub kts: Range<usize>,
}

impl CoverBox {
    /// The box a shard of the given kind claims; `None` for the reduction
    /// pass, which covers no grid units.
    pub fn from_kind(kind: &ShardKind, k_units: usize) -> Option<CoverBox> {
        match kind {
            ShardKind::Rect { rows, cols } => Some(CoverBox {
                rows: rows.clone(),
                cols: cols.clone(),
                kts: 0..k_units,
            }),
            ShardKind::KSlice {
                rows, cols, kts, ..
            } => Some(CoverBox {
                rows: rows.clone(),
                cols: cols.clone(),
                kts: kts.clone(),
            }),
            ShardKind::Reduction { .. } => None,
        }
    }

    fn volume(&self) -> u64 {
        self.rows.len() as u64 * self.cols.len() as u64 * self.kts.len() as u64
    }

    fn intersects(&self, other: &CoverBox) -> bool {
        fn overlap(a: &Range<usize>, b: &Range<usize>) -> bool {
            a.start.max(b.start) < a.end.min(b.end)
        }
        overlap(&self.rows, &other.rows)
            && overlap(&self.cols, &other.cols)
            && overlap(&self.kts, &other.kts)
    }
}

/// Checks that `boxes` tile the `m_units × n_units × k_units` grid exactly
/// once: in bounds, pairwise disjoint, and volume-complete.
pub fn check_coverage(
    m_units: usize,
    n_units: usize,
    k_units: usize,
    boxes: &[CoverBox],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (i, b) in boxes.iter().enumerate() {
        if b.rows.end > m_units || b.cols.end > n_units || b.kts.end > k_units {
            diags.push(
                Diagnostic::new(
                    DiagCode::DoubleCoverage,
                    format!("shard box {b:?} exceeds the {m_units}x{n_units}x{k_units} unit grid"),
                )
                .in_shard(i),
            );
        }
    }
    for (i, a) in boxes.iter().enumerate() {
        for (j, b) in boxes.iter().enumerate().skip(i + 1) {
            if a.intersects(b) {
                diags.push(
                    Diagnostic::new(
                        DiagCode::DoubleCoverage,
                        format!("shards {i} and {j} both cover {a:?} ∩ {b:?}"),
                    )
                    .in_shard(j),
                );
            }
        }
    }
    let total = m_units as u64 * n_units as u64 * k_units as u64;
    let covered: u64 = boxes.iter().map(CoverBox::volume).sum();
    if covered < total {
        diags.push(Diagnostic::new(
            DiagCode::CoverageHole,
            format!(
                "shard boxes cover {covered} of {total} units of the \
                 {m_units}x{n_units}x{k_units} grid"
            ),
        ));
    }
    diags
}
