//! Property tests for the static verifier: every stream the generators
//! produce — all kernel families × shard plans × ragged shapes — verifies
//! clean, and every mutation-corpus entry is rejected with its expected
//! diagnostic.

use proptest::prelude::*;
use vegeta_kernels::{GemmShape, Kernel, KernelOptions, KernelSpec, ShardPlan, SparseMode};
use vegeta_lint::{run_corpus, verify_shard_set_with, verify_shard_streams, verify_spec};
use vegeta_sparse::NmRatio;

/// One spec per kernel family/mode, including a no-overhead low-unroll
/// tiled variant (mirrors the sharding property suite).
fn all_family_specs() -> Vec<KernelSpec> {
    let mut ratios = vec![NmRatio::S1_4; 11];
    ratios.extend(vec![NmRatio::S2_4; 9]);
    ratios.extend(vec![NmRatio::D4_4; 4]);
    vec![
        KernelSpec::Tiled {
            mode: SparseMode::Dense,
            opts: KernelOptions::default(),
        },
        KernelSpec::Tiled {
            mode: SparseMode::Nm2of4,
            opts: KernelOptions::default(),
        },
        KernelSpec::Tiled {
            mode: SparseMode::Nm1of4,
            opts: KernelOptions::default(),
        },
        KernelSpec::Tiled {
            mode: SparseMode::Nm2of4,
            opts: KernelOptions {
                unroll: 1,
                loop_overhead: false,
            },
        },
        KernelSpec::Listing1 {
            mode: SparseMode::Dense,
        },
        KernelSpec::Listing1 {
            mode: SparseMode::Nm1of4,
        },
        KernelSpec::RowWise { row_ratios: ratios },
        KernelSpec::Vector,
    ]
}

#[test]
fn every_family_verifies_clean_at_a_fixed_ragged_shape() {
    let shape = GemmShape::new(93, 41, 197);
    for spec in all_family_specs() {
        let report = verify_spec(&spec, shape);
        assert!(report.is_clean(), "{}: {report}", spec.name());
        assert!(report.ops_checked > 0, "{}", spec.name());
    }
}

#[test]
fn shard_plan_sweep_verifies_clean_for_every_family() {
    let shape = GemmShape::new(96, 64, 256);
    for spec in all_family_specs() {
        for cores in [1, 2, 4, 8, 16] {
            let report = vegeta_lint::verify_shard_set(&spec, shape, cores);
            assert!(
                report.is_clean(),
                "{} @ {cores} cores: {report}",
                spec.name()
            );
            let report = verify_shard_streams(&spec, shape, cores);
            assert!(
                report.is_clean(),
                "{} @ {cores} 1D shards: {report}",
                spec.name()
            );
        }
    }
}

#[test]
fn mutation_corpus_is_fully_rejected() {
    let corpus = run_corpus();
    assert!(corpus.len() >= 12, "corpus has {} operators", corpus.len());
    for (mutation, report) in corpus {
        assert!(!report.is_clean(), "{} was not rejected", mutation.name());
        assert!(
            report.has(mutation.expect()),
            "{} expected {} but got: {report}",
            mutation.name(),
            mutation.expect()
        );
    }
}

proptest! {
    /// Any ragged shape, any family: the unsharded stream verifies clean.
    #[test]
    fn prop_streams_verify_clean(
        spec_idx in 0usize..8,
        m in 1usize..120,
        n in 1usize..90,
        k in 1usize..220,
    ) {
        let spec = &all_family_specs()[spec_idx];
        let report = verify_spec(spec, GemmShape::new(m, n, k));
        prop_assert!(report.is_clean(), "{}: {report}", spec.name());
    }

    /// Any ragged shape, any family, any shard plan: the 2D/K-split set
    /// (with its reduction, when K splits) verifies clean.
    #[test]
    fn prop_shard_sets_verify_clean(
        spec_idx in 0usize..8,
        m in 1usize..120,
        n in 1usize..90,
        k in 1usize..220,
        ms in 1usize..5,
        ns in 1usize..5,
        ks in 1usize..4,
    ) {
        let spec = &all_family_specs()[spec_idx];
        let shape = GemmShape::new(m, n, k);
        let report = verify_shard_set_with(spec, shape, ShardPlan::new(ms, ns, ks));
        prop_assert!(report.is_clean(), "{}: {report}", spec.name());
    }

    /// The legacy 1D M-row split verifies clean for any shard count,
    /// including counts that leave some shards empty.
    #[test]
    fn prop_1d_shards_verify_clean(
        spec_idx in 0usize..8,
        m in 1usize..120,
        n in 1usize..90,
        k in 1usize..220,
        shards in 1usize..24,
    ) {
        let spec = &all_family_specs()[spec_idx];
        let report = verify_shard_streams(spec, GemmShape::new(m, n, k), shards);
        prop_assert!(report.is_clean(), "{}: {report}", spec.name());
    }
}
